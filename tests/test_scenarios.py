"""Tests for the scenario-matrix subsystem (repro.scenarios).

Covers the SQL pushdown oracle (hypothesis-driven against the numpy
implementations, on both embedded engines), the scenario/backed registries,
cross-backend answer agreement, the matrix runner with its schema-checked
artifacts, and the consolidated benchmark gate runner.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.preference import top_k_at
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.core.records import Dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import InvalidQueryError, InvalidRegionError
from repro.scenarios import (
    BACKENDS,
    BENCH_GATES,
    SCENARIOS,
    SQLOracle,
    Scenario,
    available_backends,
    markdown_report,
    resolve_backend,
    run_matrix,
    select_backends,
    select_scenarios,
    text_report,
)
from repro.scenarios.backends import _StateTracker
from repro.skyline.skyband import k_skyband as python_k_skyband

HAS_DUCKDB = "duckdb" in available_backends()

#: Every embedded engine importable here; duckdb rows are skipped cleanly
#: when the optional dependency is absent.
SQL_PARAMS = [
    pytest.param("sqlite", id="sqlite"),
    pytest.param(
        "duckdb",
        id="duckdb",
        marks=pytest.mark.skipif(not HAS_DUCKDB, reason="duckdb not installed"),
    ),
]

oracle_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _random_case(seed: int, dim: int):
    from repro.bench.workloads import _random_cube

    rng = np.random.default_rng(seed)
    values = rng.random((int(rng.integers(20, 80)), dim))
    lower, upper = _random_cube(dim - 1, float(rng.uniform(0.05, 0.2)), rng)
    region = hyperrectangle(lower, upper)
    k = int(rng.integers(1, 5))
    return values, region, k


class TestSQLOracle:
    @pytest.mark.parametrize("backend", SQL_PARAMS)
    @oracle_settings
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 4))
    def test_k_skyband_matches_python(self, backend, seed, dim):
        values, _, k = _random_case(seed, dim)
        with SQLOracle(values, backend=backend) as oracle:
            sql_ids = oracle.k_skyband(k)
        assert sorted(sql_ids.tolist()) == sorted(python_k_skyband(values, k).tolist())

    @pytest.mark.parametrize("backend", SQL_PARAMS)
    @oracle_settings
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 4))
    def test_r_skyband_matches_core(self, backend, seed, dim):
        values, region, k = _random_case(seed, dim)
        with SQLOracle(values, backend=backend) as oracle:
            sql_ids = oracle.r_skyband(region, k)
        core_ids = compute_r_skyband(values, region, k).indices
        assert sorted(sql_ids.tolist()) == sorted(np.asarray(core_ids).tolist())

    @pytest.mark.parametrize("backend", SQL_PARAMS)
    @oracle_settings
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 4))
    def test_top_k_matches_preference(self, backend, seed, dim):
        values, region, k = _random_case(seed, dim)
        weights = region.sample(1)[0]
        with SQLOracle(values, backend=backend) as oracle:
            sql_ids = oracle.top_k(weights, k)
        assert sql_ids.tolist() == top_k_at(values, weights, k).tolist()

    def test_duplicate_rows_stress_ties(self):
        rng = np.random.default_rng(7)
        base = rng.random((25, 3))
        values = np.vstack([base, base[:10]])  # exact duplicates force ties
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        with SQLOracle(values) as oracle:
            sql_ids = oracle.r_skyband(region, 3)
        core_ids = compute_r_skyband(values, region, 3).indices
        assert sorted(sql_ids.tolist()) == sorted(np.asarray(core_ids).tolist())

    def test_custom_stable_ids(self):
        values = np.random.default_rng(3).random((30, 3))
        ids = np.arange(30) + 100
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        with SQLOracle(values, ids=ids) as oracle:
            sql_ids = oracle.r_skyband(region, 2)
        positions = compute_r_skyband(values, region, 2).indices
        assert sorted(sql_ids.tolist()) == sorted((np.asarray(positions) + 100).tolist())

    def test_rejects_bad_inputs(self):
        values = np.random.default_rng(0).random((10, 3))
        with pytest.raises(InvalidQueryError):
            SQLOracle(values[:, :1])
        with pytest.raises(InvalidQueryError):
            SQLOracle(values, ids=np.zeros(10, dtype=int))
        with pytest.raises(InvalidQueryError):
            resolve_backend("postgres")
        with SQLOracle(values) as oracle:
            with pytest.raises(InvalidQueryError):
                oracle.k_skyband(0)
            with pytest.raises(InvalidQueryError):
                oracle.top_k([0.5], 3)  # wrong weight dimensionality

    def test_region_without_vertices_rejected(self):
        values = np.random.default_rng(0).random((10, 3))
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        region._vertices = None
        with SQLOracle(values) as oracle:
            with pytest.raises(InvalidRegionError):
                oracle.r_skyband(region, 2)

    def test_sqlite_always_available(self):
        assert "sqlite" in available_backends()
        assert resolve_backend("auto") in ("duckdb", "sqlite")


class TestScenarioRegistry:
    def test_registered_scenarios_cover_required_axes(self):
        distributions = {s.distribution for s in SCENARIOS.values()}
        traffics = {s.traffic for s in SCENARIOS.values()}
        assert {"IND", "COR", "ANTI", "CLUS"} <= distributions
        assert {"cold", "hot-storm", "zipf-churn", "adversarial"} <= traffics

    def test_matrix_meets_ci_floor(self):
        # Acceptance criterion: >=3 scenarios x >=3 backends in the smoke run.
        assert len(SCENARIOS) >= 3
        assert len(BACKENDS) >= 3

    def test_build_is_reproducible(self):
        scenario = SCENARIOS["ind-cold"]
        data_a, events_a = scenario.build(smoke=True)
        data_b, events_b = scenario.build(smoke=True)
        assert np.array_equal(data_a.values, data_b.values)
        assert len(events_a) == len(events_b)
        for a, b in zip(events_a, events_b):
            assert a["op"] == b["op"]
            if a["op"] == "query":
                assert a["k"] == b["k"] and a["lower"] == b["lower"]

    def test_smoke_sizing_is_reduced(self):
        for scenario in SCENARIOS.values():
            assert scenario.smoke_cardinality < scenario.cardinality
            assert scenario.smoke_events <= scenario.events

    def test_query_events_carry_interned_regions(self):
        _, events = SCENARIOS["cor-storm"].build(smoke=True)
        queries = [e for e in events if e["op"] == "query"]
        assert queries and all("region" in e for e in queries)

    def test_unknown_traffic_shape_rejected(self):
        with pytest.raises(InvalidQueryError):
            Scenario(
                name="bad", distribution="IND", traffic="nope", description="",
                cardinality=10, events=1, smoke_cardinality=5, smoke_events=1,
            )

    def test_selection_errors_name_the_unknowns(self):
        with pytest.raises(InvalidQueryError, match="no-such"):
            select_scenarios(["no-such"])
        with pytest.raises(InvalidQueryError, match="no-such"):
            select_backends(["no-such"])


class TestStateTracker:
    def test_ids_follow_dynamic_engine_convention(self):
        data = synthetic_dataset("IND", 5, 3, seed=0)
        tracker = _StateTracker(data)
        tracker.apply({"op": "insert", "values": [0.5, 0.5, 0.5]})
        tracker.apply({"op": "delete", "id": 2})
        assert tracker.ids == [0, 1, 3, 4, 5]
        assert tracker.matrix().shape == (5, 3)
        assert tracker.ids == sorted(tracker.ids)  # positional == id tie-breaks


class TestBackendAgreement:
    def test_all_backends_agree_on_static_scenario(self):
        data, events = SCENARIOS["anti-adversarial"].build(smoke=True)
        fingerprints = {}
        for name, cls in BACKENDS.items():
            fingerprints[name] = cls().run(data, events).fingerprint()
        reference = fingerprints["serial"]
        assert reference  # non-empty answers
        for name, fingerprint in fingerprints.items():
            assert fingerprint == reference, f"{name} diverges from serial"

    def test_dynamic_and_rebuild_agree_under_churn(self):
        data, events = SCENARIOS["clus-churn"].build(smoke=True)
        serial = BACKENDS["serial"]().run(data, events)
        dynamic = BACKENDS["dynamic"]().run(data, events)
        sql = BACKENDS["sql"]().run(data, events)
        assert dynamic.fingerprint() == serial.fingerprint()
        assert sql.fingerprint() == serial.fingerprint()
        assert sql.stats["pushed_candidates"] > 0


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def mini_result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("matrix")
        return out, run_matrix(
            ["cor-storm"], ["serial", "engine", "sql"], smoke=True, output_dir=out
        )

    def test_cells_pass_the_oracle(self, mini_result):
        _, result = mini_result
        assert result.ok
        assert {row["oracle"] for row in result.rows} == {"ok"}
        assert len(result.rows) == 3

    def test_artifacts_are_schema_valid(self, mini_result):
        from repro.bench.schema import validate_bench_file, validate_metrics_file

        out, result = mini_result
        bench = out / "BENCH_matrix.json"
        assert bench.exists()
        payload = validate_bench_file(bench)
        assert payload["benchmark"] == "matrix"
        metrics = sorted(out.glob("METRICS_matrix_*.jsonl"))
        assert len(metrics) == 3
        for path in metrics:
            assert validate_metrics_file(path) > 0

    def test_per_cell_metrics_include_matrix_counter(self, mini_result):
        out, _ = mini_result
        path = out / "METRICS_matrix_cor-storm_engine.jsonl"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in records if r["record"] == "metric"}
        samples = by_name["repro_matrix_cells_total"]["samples"]
        assert any(s["labels"].get("backend") == "engine" for s in samples)

    def test_answer_mismatch_is_caught(self, monkeypatch, tmp_path):
        from repro.scenarios import backends as backends_module

        original = backends_module.SerialBackend.run

        def corrupted(self, data, events):
            outcome = original(self, data, events)
            if outcome.answers and outcome.answers[0]["utk1"]:
                outcome.answers[0]["utk1"] = outcome.answers[0]["utk1"][:-1]
            return outcome

        monkeypatch.setattr(backends_module.SerialBackend, "run", corrupted)
        result = run_matrix(["cor-storm"], ["serial"], smoke=True, output_dir=None)
        assert not result.ok
        assert result.rows[0]["oracle"] == "answer-mismatch"

    def test_oracle_off_marks_cells_skipped(self):
        result = run_matrix(
            ["cor-storm"], ["serial"], smoke=True, oracle=False, output_dir=None
        )
        assert result.rows[0]["oracle"] == "skipped"
        assert result.ok  # nothing checked, nothing failed

    def test_reports_render(self, mini_result):
        _, result = mini_result
        markdown = markdown_report(result.payload)
        assert "| scenario |" in markdown and "cor-storm" in markdown
        assert "All cells agree" in markdown
        text = text_report(result.payload)
        assert "cor-storm" in text and "qps" in text


class TestGateRunner:
    def test_registry_matches_benchmark_scripts(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        names = [gate.name for gate in BENCH_GATES]
        assert len(names) == len(set(names)) == 8
        for gate in BENCH_GATES:
            assert (root / gate.script).exists(), gate.script
            assert gate.output.startswith("BENCH_")

    def test_run_gates_reports_pass_and_fail(self, tmp_path):
        from repro.scenarios.gates import BenchGate, run_gates

        good = tmp_path / "good.py"
        good.write_text("import sys; sys.exit(0)\n")
        bad = tmp_path / "bad.py"
        bad.write_text("import sys; sys.exit(3)\n")
        gates = (
            BenchGate("good", good.name, "BENCH_good.json", "always passes"),
            BenchGate("bad", bad.name, "BENCH_bad.json", "always fails"),
        )
        lines = []
        results = run_gates(smoke=True, cwd=tmp_path, progress=lines.append, gates=gates)
        assert results["good"]["passed"] and not results["bad"]["passed"]
        assert results["bad"]["returncode"] == 3
        assert any("gate bad: FAIL" in line for line in lines)
