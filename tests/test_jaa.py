"""Tests for JAA (UTK2): paper example, exact d=2 oracle, consistency checks."""

import numpy as np
import pytest

from repro.core.jaa import JAA
from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.exceptions import InvalidQueryError

from helpers import brute_force_top_k, exact_utk2_d2


class TestPaperExample:
    def test_figure1_partitioning(self, paper_hotels, paper_region):
        """Figure 1(b): the top-2 sets across R are exactly four."""
        result = JAA(paper_hotels.values, paper_region, 2).run()
        names = {
            frozenset(paper_hotels.label_of(i) for i in top) for top in result.distinct_top_k_sets
        }
        assert names == {
            frozenset({"p2", "p4"}),
            frozenset({"p1", "p4"}),
            frozenset({"p1", "p2"}),
            frozenset({"p1", "p6"}),
        }

    def test_figure1_partitions_cover_region(self, paper_hotels, paper_region):
        result = JAA(paper_hotels.values, paper_region, 2).run()
        rng = np.random.default_rng(0)
        for weights in paper_region.sample(300, rng):
            top = result.top_k_at(weights)
            assert top is not None
            assert top == frozenset(brute_force_top_k(paper_hotels.values, weights, 2))

    def test_union_matches_utk1(self, paper_hotels, paper_region):
        utk1 = RSA(paper_hotels.values, paper_region, 2).run()
        utk2 = JAA(paper_hotels.values, paper_region, 2).run()
        assert set(utk2.result_records) == set(utk1.indices)


class TestValidation:
    def test_rejects_nonpositive_k(self, paper_hotels, paper_region):
        with pytest.raises(InvalidQueryError):
            JAA(paper_hotels.values, paper_region, -1)

    def test_rejects_dimension_mismatch(self, paper_hotels):
        with pytest.raises(InvalidQueryError):
            JAA(paper_hotels.values, hyperrectangle([0.2], [0.4]), 2)

    def test_rejects_bad_values(self, paper_region):
        with pytest.raises(InvalidQueryError):
            JAA(np.array([1.0, 2.0]), paper_region, 1)


class TestExactnessD2:
    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 3), (3, 5)])
    def test_matches_exact_interval_oracle(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((100, 2)) * 10
        lo, hi = 0.25, 0.75
        region = hyperrectangle([lo], [hi])
        result = JAA(values, region, k).run()
        oracle = exact_utk2_d2(values, lo, hi, k)
        # Same distinct top-k sets ...
        assert result.distinct_top_k_sets == {segment[2] for segment in oracle}
        # ... and the correct set at the midpoint of every oracle segment.
        for a, b, expected in oracle:
            probe = np.array([(a + b) / 2.0])
            assert result.top_k_at(probe) == expected


class TestHigherDimensions:
    @pytest.mark.parametrize("seed,d,k", [(0, 3, 2), (1, 3, 4), (2, 4, 3), (3, 5, 2)])
    def test_partition_sets_match_bruteforce_at_samples(self, seed, d, k):
        rng = np.random.default_rng(seed)
        values = rng.random((150, d)) * 10
        lower = np.full(d - 1, 0.1)
        upper = np.full(d - 1, 0.1 + 0.5 / (d - 1))
        region = hyperrectangle(lower, upper)
        result = JAA(values, region, k).run()
        for weights in region.sample(250, rng):
            assert result.top_k_at(weights) == \
                frozenset(brute_force_top_k(values, weights, k))

    def test_every_partition_is_full_dimensional(self):
        rng = np.random.default_rng(6)
        values = rng.random((120, 3)) * 10
        region = hyperrectangle([0.1, 0.1], [0.35, 0.3])
        result = JAA(values, region, 3).run()
        for partition in result.partitions:
            assert partition.cell.is_full_dimensional()
            assert len(partition.top_k) == 3

    def test_interior_point_top_k_matches_label(self):
        rng = np.random.default_rng(7)
        values = rng.random((150, 4)) * 10
        region = hyperrectangle([0.1, 0.1, 0.1], [0.25, 0.25, 0.25])
        result = JAA(values, region, 3).run()
        for partition in result.partitions:
            probe = partition.interior_point
            assert partition.top_k == frozenset(brute_force_top_k(values, probe, 3))


class TestOptions:
    def test_shared_skyband(self):
        rng = np.random.default_rng(8)
        values = rng.random((150, 3)) * 10
        region = hyperrectangle([0.15, 0.1], [0.4, 0.25])
        skyband = compute_r_skyband(values, region, 3)
        shared = JAA(values, region, 3, skyband=skyband).run()
        fresh = JAA(values, region, 3).run()
        assert shared.distinct_top_k_sets == fresh.distinct_top_k_sets

    def test_lemma1_disabled_same_answer(self):
        rng = np.random.default_rng(9)
        values = rng.random((100, 3)) * 10
        region = hyperrectangle([0.15, 0.1], [0.35, 0.25])
        fast = JAA(values, region, 3, use_lemma1=True).run()
        slow = JAA(values, region, 3, use_lemma1=False).run()
        assert fast.distinct_top_k_sets == slow.distinct_top_k_sets

    def test_stats_populated(self):
        rng = np.random.default_rng(10)
        values = rng.random((120, 3)) * 10
        region = hyperrectangle([0.15, 0.1], [0.4, 0.25])
        result = JAA(values, region, 3).run()
        assert result.stats["partition_calls"] >= 1
        assert result.stats["finalized_partitions"] == len(result)


class TestEdgeCases:
    def test_k_at_least_skyband_size(self, paper_region):
        values = np.random.default_rng(0).random((6, 3))
        result = JAA(values, paper_region, 10).run()
        assert len(result) == 1
        assert result.partitions[0].top_k == frozenset(range(6))

    def test_single_record(self, paper_region):
        result = JAA(np.array([[1.0, 2.0, 3.0]]), paper_region, 1).run()
        assert len(result) == 1
        assert result.partitions[0].top_k == frozenset({0})

    def test_k_one(self):
        rng = np.random.default_rng(12)
        values = rng.random((200, 3)) * 10
        region = hyperrectangle([0.1, 0.1], [0.45, 0.35])
        result = JAA(values, region, 1).run()
        for partition in result.partitions:
            assert len(partition.top_k) == 1
        for weights in region.sample(100, rng):
            assert result.top_k_at(weights) == \
                frozenset(brute_force_top_k(values, weights, 1))
