"""Retry policies, fault plans, error codes, supervision and client retry.

Covers the request/response half of the resilience story: deterministic
backoff schedules and fault plans, the machine-readable error ``code``
field on every failure response, client deadlines (:class:`ServeTimeout`),
the supervised worker pool surviving ``SIGKILL``, and transparent
client-side retry with exactly-once updates (txid dedup).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import threading

import pytest

from repro.datasets.synthetic import synthetic_dataset
from repro.resilience.faults import (
    QUERY_KINDS,
    SCHEDULES,
    UPDATE_KINDS,
    FaultPlan,
    build_plan,
)
from repro.resilience.retry import (
    CHAOS_RETRY,
    DEFAULT_RETRY,
    NO_RETRY,
    RETRIABLE_CODES,
    RetryPolicy,
)
from repro.resilience.supervisor import SupervisedPool, WorkerCrashError
from repro.serve.client import ServeClient, ServeError, ServeTimeout
from repro.serve.engine import ServeEngine
from repro.serve.server import ServerThread, UTKServer


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1.0,
                             multiplier=2.0, jitter=0.5)
        first = policy.delays(random.Random(7))
        second = policy.delays(random.Random(7))
        assert first == second
        assert len(first) == 5  # one fewer than attempts
        assert all(0 < delay <= 1.0 for delay in first)

    def test_backoff_grows_until_the_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.8,
                             multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]

    def test_presets(self):
        assert NO_RETRY.max_attempts == 1
        assert CHAOS_RETRY.max_attempts > DEFAULT_RETRY.max_attempts
        assert RETRIABLE_CODES == {"overloaded", "worker_crash", "shutting_down"}


class TestFaultPlan:
    def test_build_is_deterministic_per_schedule_and_seed(self):
        for schedule in SCHEDULES:
            one = build_plan(schedule, 42, 30, 80)
            two = build_plan(schedule, 42, 30, 80)
            assert one.to_payload() == two.to_payload()
            assert len(one) > 0

    def test_different_seeds_move_the_faults(self):
        payloads = {
            json.dumps(build_plan("mixed", seed, 40, 90).to_payload())
            for seed in range(6)
        }
        assert len(payloads) > 1

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown fault schedule"):
            build_plan("nope", 1, 10, 10)

    def test_file_roundtrip_and_position_queries(self, tmp_path):
        plan = build_plan("mixed", 3, 30, 80)
        path = tmp_path / "plan.json"
        plan.to_file(path)
        loaded = FaultPlan.from_file(path)
        assert loaded.to_payload() == plan.to_payload()
        for event in plan:
            if event.kind in UPDATE_KINDS and event.kind != "slow_update":
                assert event in loaded.updates_due(event.at)
            if event.kind in QUERY_KINDS:
                assert event in loaded.queries_due(event.at)
        stalls = [e for e in plan if e.kind == "slow_update"]
        assert all(plan.stall_for_update(e.at) >= e.seconds for e in stalls)
        assert plan.needs_shared_workers()  # mixed kills a worker
        assert all(e.kind == "slow_update" for e in plan.server_side_events())


@pytest.fixture
def data():
    return synthetic_dataset("IND", 80, 3, seed=3)


@pytest.fixture
def served(data):
    engine = ServeEngine(data, stripes=4)
    thread = ServerThread(engine, query_threads=2)
    host, port = thread.start()
    yield host, port, engine
    thread.stop()
    engine.close()


def _dispatch(server: UTKServer, payload: dict) -> dict:
    return asyncio.run(server._dispatch_line(json.dumps(payload).encode()))


class TestErrorCodes:
    def test_bad_request_family(self, data):
        engine = ServeEngine(data, stripes=2)
        server = UTKServer(engine, query_threads=1)
        try:
            assert _dispatch(server, {"op": "frobnicate"})["code"] == "bad_request"
            assert _dispatch(server, {"op": "delete", "id": 99999})["code"] == \
                "bad_request"
            raw = asyncio.run(server._dispatch_line(b"not json"))
            assert raw["ok"] is False and raw["code"] == "bad_request"
        finally:
            server._shutdown_pools()
            engine.close()

    def test_overloaded_carries_retry_after(self, data):
        engine = ServeEngine(data, stripes=2)
        server = UTKServer(engine, query_threads=1, max_inflight=1)
        try:
            server._inflight_queries = 1  # saturate admission
            response = _dispatch(server, {
                "op": "query", "lower": [0.1, 0.1], "upper": [0.3, 0.3], "k": 2,
            })
            assert response["ok"] is False
            assert response["code"] == "overloaded"
            assert response["retry_after"] > 0
        finally:
            server._shutdown_pools()
            engine.close()

    def test_shutting_down_refuses_new_work_but_answers_pings(self, data):
        engine = ServeEngine(data, stripes=2)
        server = UTKServer(engine, query_threads=1)
        try:
            server._stop.set()
            update = _dispatch(server, {"op": "insert", "values": [1, 1, 1]})
            assert update["code"] == "shutting_down"
            assert _dispatch(server, {"op": "ping"})["ok"] is True
        finally:
            server._shutdown_pools()
            engine.close()


class TestClientDeadlines:
    def test_unresponsive_server_raises_serve_timeout(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        accepted = []

        def sit_on_it() -> None:
            conn, _ = listener.accept()
            accepted.append(conn)  # keep it open, never answer

        thread = threading.Thread(target=sit_on_it, daemon=True)
        thread.start()
        try:
            client = ServeClient(host, port, timeout=0.3, retry=NO_RETRY)
            with pytest.raises(ServeTimeout):
                client.ping()
            client.close()
        finally:
            for conn in accepted:
                conn.close()
            listener.close()

    def test_timeout_is_a_serve_error_and_a_timeout(self):
        assert issubclass(ServeTimeout, ServeError)
        assert issubclass(ServeTimeout, TimeoutError)


def _worker_pid() -> int:
    return os.getpid()


class TestSupervisedPool:
    def test_respawns_after_worker_sigkill(self):
        pool = SupervisedPool(1, max_crash_retries=2)
        try:
            victim = pool.run(_worker_pid)
            assert pool.worker_pids() == [victim]
            os.kill(victim, signal.SIGKILL)
            survivor = pool.run(_worker_pid)
            assert survivor != victim
            assert pool.restarts >= 1
        finally:
            pool.shutdown()

    def test_worker_crash_error_is_retriable_by_code(self):
        # The server maps WorkerCrashError → code "worker_crash", which the
        # client's policy treats as transient.
        assert "worker_crash" in RETRIABLE_CODES
        assert issubclass(WorkerCrashError, Exception)


class TestClientRetry:
    def test_dropped_connection_before_send_is_transparent(self, served):
        host, port, _engine = served
        with ServeClient(host, port, retry=DEFAULT_RETRY,
                         rng=random.Random(0)) as client:
            client.inject_fault("before_send")
            assert client.ping()
            assert client.retries_total >= 1

    def test_lost_ack_after_send_applies_exactly_once(self, served):
        host, port, engine = served
        with ServeClient(host, port, retry=DEFAULT_RETRY,
                         rng=random.Random(0)) as client:
            before = len(engine.store)
            client.inject_fault("after_send")
            response = client.insert([6.0, 6.0, 6.0])
            # The first attempt reached the server; the retried request was
            # deduplicated by txid, so exactly one record appeared.
            assert response["applied"] == 1
            assert response.get("deduplicated") is True
            assert len(engine.store) == before + 1

    def test_explicit_txid_dedup(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            first = client.request(
                {"op": "insert", "values": [2.0, 2.0, 2.0], "txid": "tx-a"}
            )
            second = client.request(
                {"op": "insert", "values": [2.0, 2.0, 2.0], "txid": "tx-a"}
            )
            assert second["applied"] == first["applied"]
            assert second["record"] == first["record"]
            assert second["deduplicated"] is True

    def test_non_retriable_error_raises_immediately(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError) as failure:
                client.query([0.1, 0.1], [0.3, 0.3], 2, "utk9")
            assert failure.value.code == "bad_request"
            assert client.retries_total == 0

    def test_injected_fault_mode_is_validated(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            with pytest.raises(ValueError, match="unknown fault mode"):
                client.inject_fault("sideways")
