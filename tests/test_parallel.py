"""Tests of the region-partitioned parallel executor.

The headline property — checked with hypothesis across random datasets,
regions and ``k`` — is serial/parallel agreement: ``utk_query(workers=4)``
reports exactly the serial UTK1 record set, and a UTK2 partitioning that
covers the same top-k sets and answers point queries with the true top-k.
Most cases run on the in-process ``backend="serial"`` (same partition /
fan-out / merge code without pool startup); dedicated tests cover the real
process pool, the engine routing, and pickling.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import utk_query
from repro.core.cell import Cell
from repro.core.jaa import JAA
from repro.core.preference import scores
from repro.core.region import hyperrectangle
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.engine import UTKEngine
from repro.exceptions import InvalidQueryError
from repro.parallel import (
    axis_extents,
    bisect_region,
    merge_utk1_results,
    merge_utk2_results,
    parallel_utk1,
    parallel_utk2,
    parallel_utk_query,
    subdivide_region,
)
from repro.parallel.worker import ShardTask

common_settings = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_instance(seed: int, n: int, d: int, sigma: float):
    """A reproducible dataset + region pair in ``d`` dimensions."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, d)) * 10.0
    lower = rng.uniform(0.02, 0.9 / (d - 1) - sigma, size=d - 1)
    region = hyperrectangle(lower, lower + sigma)
    return values, region


def true_top_k(values: np.ndarray, weights: np.ndarray, k: int) -> frozenset:
    """Ground-truth top-k set at one weight vector (ties broken by index)."""
    ranked = np.lexsort((np.arange(values.shape[0]), -scores(values, weights)))
    return frozenset(int(i) for i in ranked[:k])


# ---------------------------------------------------------------- partitioning
class TestPartitioning:
    def test_bisection_halves_longest_axis(self):
        region = hyperrectangle([0.1, 0.2], [0.5, 0.3])
        low, high = bisect_region(region)
        assert np.allclose(axis_extents(low), [0.2, 0.1])
        assert np.allclose(axis_extents(high), [0.2, 0.1])
        assert low.vertices is not None and high.vertices is not None

    def test_subdivision_tiles_the_region(self):
        region = hyperrectangle([0.05, 0.1, 0.15], [0.25, 0.3, 0.35])
        pieces = subdivide_region(region, 5)
        assert len(pieces) == 5
        rng = np.random.default_rng(0)
        for point in region.sample(200, rng):
            assert any(piece.contains(point, tol=1e-9) for piece in pieces)
        for piece in pieces:
            assert piece.interior_point is not None
            assert region.contains(piece.interior_point, tol=1e-9)

    def test_subdivision_is_deterministic(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.2])
        first = subdivide_region(region, 4)
        second = subdivide_region(region, 4)
        for one, two in zip(first, second):
            a1, b1 = one.constraints
            a2, b2 = two.constraints
            assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_single_part_returns_region(self):
        region = hyperrectangle([0.1], [0.3])
        assert subdivide_region(region, 1) == [region]

    def test_invalid_parts_rejected(self):
        region = hyperrectangle([0.1], [0.3])
        with pytest.raises(InvalidQueryError):
            subdivide_region(region, 0)


# --------------------------------------------------------------------- merging
class TestMerging:
    def test_merge_requires_results(self):
        region = hyperrectangle([0.1], [0.3])
        with pytest.raises(InvalidQueryError):
            merge_utk1_results([], region, 2)
        with pytest.raises(InvalidQueryError):
            merge_utk2_results([], region, 2)

    def test_merge_interns_equal_top_k_sets(self):
        region = hyperrectangle([0.1], [0.3])
        values = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        results = []
        for piece in subdivide_region(region, 2):
            results.append(JAA(values, piece, 2).run())
        merged = merge_utk2_results(results, region, 2)
        seen: dict = {}
        for partition in merged.partitions:
            interned = seen.setdefault(partition.top_k, partition.top_k)
            assert interned is partition.top_k
        assert merged.stats["shards"] == 2

    def test_merge_unions_utk1(self):
        region = hyperrectangle([0.1], [0.3])
        values = np.random.default_rng(1).random((60, 2)) * 10
        shards = [RSA(values, piece, 3).run() for piece in subdivide_region(region, 2)]
        merged = merge_utk1_results(shards, region, 3)
        expected = sorted(set(shards[0].indices) | set(shards[1].indices))
        assert merged.indices == expected
        for index in merged.indices:
            witness = merged.witnesses[index]
            assert region.contains(witness, tol=1e-7)


# ------------------------------------------------------- serial/parallel match
class TestSerialParallelAgreement:
    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(80, 400),
        d=st.sampled_from([2, 3, 4]),
        k=st.integers(1, 8),
        sigma=st.sampled_from([0.05, 0.1, 0.2]),
    )
    def test_utk_query_workers_matches_serial(self, seed, n, d, k, sigma):
        """`utk_query(workers=4)` reports exactly the serial answer."""
        values, region = random_instance(seed, n, d, sigma)
        serial1, serial2 = utk_query(values, region, k)
        first, second = parallel_utk_query(values, region, k, workers=4, backend="serial")
        assert first.indices == serial1.indices
        assert second.distinct_top_k_sets == serial2.distinct_top_k_sets
        assert second.result_records == serial2.result_records
        assert second.result_records == serial1.indices
        # Witnesses are exactness certificates: each reported record is in
        # the true top-k at its witness vector.
        for index in first.indices:
            witness = first.witnesses[index]
            assert region.contains(witness, tol=1e-7)
            assert index in true_top_k(values, witness, k)

    @common_settings
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
    def test_partitioning_answers_point_queries(self, seed, k):
        """The merged partitioning returns the true top-k at sampled vectors."""
        values, region = random_instance(seed, 250, 3, 0.12)
        second = parallel_utk2(values, region, k, workers=4, backend="serial")
        rng = np.random.default_rng(seed + 1)
        for weights in region.sample(20, rng):
            reported = second.top_k_at(weights)
            assert reported is not None
            assert reported == true_top_k(values, weights, k)

    def test_more_shards_than_workers(self):
        values, region = random_instance(11, 300, 3, 0.15)
        serial1, serial2 = utk_query(values, region, 4)
        first, second = parallel_utk_query(values, region, 4, workers=2, shards=6, backend="serial")
        assert first.indices == serial1.indices
        assert second.distinct_top_k_sets == serial2.distinct_top_k_sets

    def test_process_backend_matches_serial(self):
        """The real process pool produces the identical answer."""
        values, region = random_instance(5, 400, 3, 0.15)
        serial1, serial2 = utk_query(values, region, 5)
        first, second = parallel_utk_query(values, region, 5, workers=2)
        assert first.indices == serial1.indices
        assert second.distinct_top_k_sets == serial2.distinct_top_k_sets
        assert first.stats["shards"] == 2
        assert first.stats["workers"] == 2

    def test_api_workers_knob(self):
        values, region = random_instance(21, 300, 3, 0.12)
        serial1, serial2 = utk_query(values, region, 3)
        first, second = utk_query(values, region, 3, workers=2)
        assert first.indices == serial1.indices
        assert second.distinct_top_k_sets == serial2.distinct_top_k_sets

    def test_workers_one_is_serial(self):
        values, region = random_instance(2, 150, 3, 0.1)
        result = parallel_utk1(values, region, 3, workers=1)
        assert "shards" not in result.stats
        serial = RSA(values, region, 3).run()
        assert result.indices == serial.indices

    def test_invalid_options_rejected(self):
        values, region = random_instance(2, 50, 3, 0.1)
        with pytest.raises(InvalidQueryError):
            parallel_utk_query(values, region, 3, algorithm="nope")
        with pytest.raises(InvalidQueryError):
            parallel_utk_query(values, region, 3, backend="gpu")
        with pytest.raises(InvalidQueryError):
            parallel_utk_query(values, region, 0)
        with pytest.raises(InvalidQueryError):
            ShardTask(0, "nope", region, 3, np.arange(1), values[:1])


# ------------------------------------------------------------- engine routing
class TestEngineParallelRouting:
    def test_heavy_queries_route_to_parallel_path(self):
        values, region = random_instance(7, 500, 3, 0.2)
        serial_engine = UTKEngine(values)
        expected = serial_engine.utk2(region, 5)
        with UTKEngine(values, parallel_workers=2, parallel_min_candidates=1) as engine:
            result, source = engine.serve_utk2(region, 5)
            assert source == "cold"
            assert engine.stats.parallel_queries == 1
            assert result.distinct_top_k_sets == expected.distinct_top_k_sets
            # The repeat is a result-cache hit: no second parallel execution.
            _, source = engine.serve_utk2(region, 5)
            assert source == "hit"
            assert engine.stats.parallel_queries == 1

    def test_light_queries_stay_serial(self):
        values, region = random_instance(9, 300, 3, 0.05)
        with UTKEngine(values, parallel_workers=4, parallel_min_candidates=10_000) as engine:
            engine.utk1(region, 2)
            assert engine.stats.parallel_queries == 0
            assert engine.stats.cold_queries == 1

    def test_parallel_disabled_by_default(self):
        values, region = random_instance(9, 200, 3, 0.1)
        engine = UTKEngine(values)
        assert engine.parallel_workers == 0
        engine.utk1(region, 2)
        assert engine.stats.parallel_queries == 0
        engine.close()  # no pool: close is a no-op

    def test_negative_workers_rejected(self):
        with pytest.raises(InvalidQueryError):
            UTKEngine(np.random.default_rng(0).random((10, 3)), parallel_workers=-1)

    def test_statistics_expose_parallel_counter(self):
        values, _ = random_instance(1, 50, 3, 0.1)
        engine = UTKEngine(values)
        assert engine.statistics()["engine"]["parallel_queries"] == 0


# ------------------------------------------------------------------- pickling
class TestPickling:
    def test_cell_pickle_drops_children_keeps_interior(self):
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        cell = Cell(region)
        point = cell.interior_point
        restored = pickle.loads(pickle.dumps(cell))
        assert np.allclose(restored.interior_point, point)
        assert restored._children == {}
        assert restored.is_full_dimensional()

    def test_results_round_trip(self):
        values, region = random_instance(3, 120, 3, 0.1)
        first, second = parallel_utk_query(values, region, 3, workers=2, backend="serial")
        clone1: UTK1Result = pickle.loads(pickle.dumps(first))
        clone2: UTK2Result = pickle.loads(pickle.dumps(second))
        assert clone1.indices == first.indices
        assert clone2.distinct_top_k_sets == second.distinct_top_k_sets
        point = clone2.partitions[0].interior_point
        assert point is not None
