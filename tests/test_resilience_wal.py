"""WAL round-trips, torn-tail/corruption recovery, and replay identity.

The property tests drive :mod:`repro.resilience.wal` with arbitrary
JSON-able payloads and arbitrary crash points: whatever the payload and
wherever the "crash" cut or corrupted the log, reopening must recover
exactly the longest valid record prefix — never raise, never resurrect
bytes past the damage.  The recovery tests then check the full contract:
replaying a WAL through :func:`repro.resilience.recovery.recover` yields an
engine answering identically to an uninterrupted serial replay.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset
from repro.dynamic.engine import DynamicUTKEngine
from repro.resilience.recovery import (
    cleanup_orphan_segments,
    read_shm_manifest,
    recover,
    write_shm_manifest,
)
from repro.resilience.wal import (
    WALCorruption,
    WriteAheadLog,
    decode_record,
    encode_record,
    read_wal,
    wal_segments,
)
from repro.serve.engine import ServeEngine

_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)

_events = st.dictionaries(st.text(max_size=8), _json_values, max_size=4)

_txids = st.none() | st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=16
)


class TestRecordCodec:
    @given(seq=st.integers(min_value=1, max_value=10**12), event=_events,
           txid=_txids)
    @settings(max_examples=60)
    def test_roundtrip_any_payload(self, seq, event, txid):
        record = decode_record(encode_record(seq, event, txid))
        assert record.seq == seq
        assert record.event == event
        assert record.txid == txid

    @given(event=_events)
    @settings(max_examples=30)
    def test_any_single_byte_flip_in_the_body_is_detected(self, event):
        line = encode_record(1, event, "tx")
        # Flip a byte inside the crc field — always detectable; body flips
        # may produce invalid JSON instead, also rejected.
        payload = json.loads(line)
        payload["crc"] = ("0" * 8 if payload["crc"] != "0" * 8 else "f" * 8)
        tampered = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode() + b"\n"
        with pytest.raises(WALCorruption, match="checksum"):
            decode_record(tampered)

    def test_missing_fields_and_bad_types_are_corruption(self):
        with pytest.raises(WALCorruption, match="missing"):
            decode_record(b'{"seq": 1, "event": {}}')
        with pytest.raises(WALCorruption, match="types"):
            decode_record(b'{"seq": "x", "event": {}, "crc": "00000000"}')
        with pytest.raises(WALCorruption, match="undecodable"):
            decode_record(b"not json at all")


def _fill(wal_dir, events, *, segment_max=1024):
    wal = WriteAheadLog(wal_dir, segment_max_records=segment_max)
    for index, event in enumerate(events):
        wal.append(event, txid=f"t{index}")
    wal.close()
    return wal


class TestScanAndReopen:
    @given(events=st.lists(_events, min_size=1, max_size=8),
           cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40)
    def test_torn_tail_recovers_the_acked_prefix(self, tmp_path_factory,
                                                 events, cut):
        wal_dir = tmp_path_factory.mktemp("wal")
        _fill(wal_dir, events)
        segment = wal_segments(wal_dir)[-1]
        raw = segment.read_bytes()
        lines = raw.splitlines(keepends=True)
        tail = lines[-1]
        cut = min(cut, len(tail) - 1)  # keep at least the newline missing
        segment.write_bytes(b"".join(lines[:-1]) + tail[:cut])
        scan = read_wal(wal_dir)
        assert len(scan.records) == len(events) - 1
        assert [r.event for r in scan.records] == events[:-1]
        assert scan.truncated_reason is not None
        # Reopening repairs: the cut bytes move aside, appends resume.
        reopened = WriteAheadLog(wal_dir)
        assert [r.event for r in reopened.recovered_records] == events[:-1]
        assert reopened.last_seq == len(events) - 1
        seq = reopened.append({"op": "probe"})
        assert seq == len(events)
        reopened.close()
        assert any(p.name.endswith(".corrupt") for p in wal_dir.iterdir())

    def test_midfile_corruption_stops_at_last_valid_prefix(self, tmp_path):
        events = [{"op": "insert", "values": [float(i)]} for i in range(6)]
        _fill(tmp_path, events)
        segment = wal_segments(tmp_path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[3] = lines[3][:10] + b"X" + lines[3][11:]  # corrupt record 4
        segment.write_bytes(b"".join(lines))
        scan = read_wal(tmp_path)
        assert len(scan.records) == 3
        assert scan.truncated_reason is not None
        reopened = WriteAheadLog(tmp_path)
        assert len(reopened.recovered_records) == 3
        reopened.close()

    def test_sequence_gap_is_not_trusted(self, tmp_path):
        wal_dir = tmp_path
        segment = wal_dir / "wal-00000000.jsonl"
        segment.write_bytes(
            encode_record(1, {"a": 1}) + encode_record(3, {"a": 3})
        )
        scan = read_wal(wal_dir)
        assert len(scan.records) == 1
        assert "sequence gap" in scan.truncated_reason

    def test_rotation_splits_segments_and_reopen_replays_all(self, tmp_path):
        events = [{"op": "insert", "values": [float(i)]} for i in range(10)]
        _fill(tmp_path, events, segment_max=3)
        assert len(wal_segments(tmp_path)) >= 4
        reopened = WriteAheadLog(tmp_path, segment_max_records=3)
        assert [r.event for r in reopened.recovered_records] == events
        assert [r.txid for r in reopened.recovered_records] == [
            f"t{i}" for i in range(10)
        ]
        reopened.close()

    def test_corruption_distrusts_later_segments_too(self, tmp_path):
        events = [{"op": "insert", "values": [float(i)]} for i in range(9)]
        _fill(tmp_path, events, segment_max=3)
        first = wal_segments(tmp_path)[0]
        lines = first.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"seq": 2, "event": {}, "crc": "00000000"}\n'
        first.write_bytes(b"".join(lines))
        reopened = WriteAheadLog(tmp_path, segment_max_records=3)
        assert len(reopened.recovered_records) == 1
        # Later segments were renamed aside, not silently replayed.
        assert len(reopened.segment_paths()) == 1
        assert sum(1 for p in tmp_path.iterdir()
                   if p.name.endswith(".corrupt")) >= 3
        reopened.close()


@pytest.fixture
def data():
    return synthetic_dataset("IND", 60, 3, seed=5)


_UPDATES = [
    {"op": "insert", "values": [9.0, 9.0, 9.0]},
    {"op": "insert", "values": [0.5, 8.5, 4.0]},
    {"op": "delete", "id": 3},
    {"op": "insert", "values": [7.5, 1.5, 6.0]},
    {"op": "delete", "id": 60},
]


class TestRecover:
    def test_replay_matches_uninterrupted_serial_engine(self, tmp_path, data):
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir)
        for index, event in enumerate(_UPDATES):
            wal.append(event, txid=f"t{index}")
        wal.close()

        result = recover(data, wal_dir)
        serial = DynamicUTKEngine(data)
        try:
            serial.apply_updates(_UPDATES)
            assert result.replayed == len(_UPDATES)
            assert set(result.txids) == {f"t{i}" for i in range(len(_UPDATES))}
            assert result.txids["t2"]["record"] == 3
            region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
            for k in (2, 3):
                assert sorted(result.engine.utk1(region, k).indices) == sorted(
                    serial.utk1(region, k).indices
                )
            assert len(result.engine.store) == len(serial.store)
        finally:
            result.engine.close()
            result.wal.close()
            serial.close()

    def test_recover_tolerates_a_torn_tail(self, tmp_path, data):
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir)
        for event in _UPDATES:
            wal.append(event)
        wal.close()
        segment = wal_segments(wal_dir)[-1]
        segment.write_bytes(segment.read_bytes()[:-7])  # tear the last record
        result = recover(data, wal_dir)
        try:
            assert result.replayed == len(_UPDATES) - 1
            assert result.truncated_reason is not None
        finally:
            result.engine.close()
            result.wal.close()

    def test_manifest_roundtrip_and_orphan_cleanup(self, tmp_path, data):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        engine = ServeEngine(data)
        names = engine.shm_segment_names()
        assert names
        write_shm_manifest(wal_dir, names)
        assert read_shm_manifest(wal_dir) == sorted(names)
        # A SIGKILL'd owner never unlinks; cleanup must (unlink only removes
        # the names — the live engine's mappings stay valid).
        removed = cleanup_orphan_segments(wal_dir)
        assert sorted(removed) == sorted(names)
        assert cleanup_orphan_segments(wal_dir) == []  # idempotent
        engine.close()

    def test_recover_seeds_server_dedup_across_restart(self, tmp_path, data):
        """A txid WAL'd before a crash must ack, not re-apply, after it."""
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir)
        wal.append(_UPDATES[0], txid="client-1-1")
        wal.close()
        result = recover(data, wal_dir)
        try:
            assert result.txids["client-1-1"]["applied"] == 1
        finally:
            result.engine.close()
            result.wal.close()
