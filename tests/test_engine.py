"""Tests for the persistent query-serving engine (``repro.engine``)."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import brute_force_top_k

from repro.core.api import make_engine, utk1, utk2
from repro.core.records import Dataset
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband, refilter_r_skyband
from repro.bench.workloads import engine_query_stream, zipfian_k
from repro.engine import (
    BatchQuery,
    LRUCache,
    UTKEngine,
    as_batch_query,
    clip_partitioning,
    region_contains,
    region_signature,
    summarize_batch,
)
from repro.exceptions import InvalidQueryError


def random_dataset(seed: int, n: int = 90, d: int = 3) -> Dataset:
    return Dataset(np.random.default_rng(seed).random((n, d)) * 10.0)


def random_region_pair(seed: int, dim: int = 2):
    """A random region and a strictly contained sub-region."""
    rng = np.random.default_rng(seed)
    lower = rng.uniform(0.05, 0.3, size=dim)
    upper = lower + rng.uniform(0.15, 0.25, size=dim)
    span = upper - lower
    sub_lower = lower + span * 0.25
    sub_upper = upper - span * 0.25
    return hyperrectangle(lower, upper), hyperrectangle(sub_lower, sub_upper)


# ------------------------------------------------------------------ primitives
class TestCachePrimitives:
    def test_lru_accounting_and_eviction_bound(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b", the least recently used
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats == {"size": 2, "maxsize": 2, "hits": 2, "misses": 1, "evictions": 1}

    def test_lru_scan_is_most_recent_first(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert [key for key, _ in cache.scan()] == ["a", "c", "b"]

    def test_lru_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_region_signature_stable_and_discriminating(self):
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        again = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        other = hyperrectangle([0.1, 0.1], [0.3, 0.31])
        assert region_signature(region) == region_signature(again)
        assert region_signature(region) != region_signature(other)

    def test_region_containment(self):
        outer, inner = random_region_pair(3)
        assert region_contains(outer, inner)
        assert region_contains(outer, outer)
        assert not region_contains(inner, outer)
        disjoint = hyperrectangle([0.55, 0.05], [0.65, 0.1])
        assert not region_contains(outer, disjoint)


# ----------------------------------------------------------------- accounting
class TestEngineAccounting:
    def test_repeat_query_hits_result_cache(self):
        engine = UTKEngine(random_dataset(1))
        region, _ = random_region_pair(1)
        first = engine.utk1(region, 2)
        second = engine.utk1(region, 2)
        assert first.indices == second.indices
        stats = engine.stats
        assert stats.utk1_queries == 2
        assert stats.result_hits == 1
        assert stats.cold_queries == 1

    def test_serve_reports_reuse_paths(self):
        engine = UTKEngine(random_dataset(2))
        region, sub = random_region_pair(2)
        _, source_cold = engine.serve_utk2(region, 2)
        _, source_hit = engine.serve_utk2(region, 2)
        _, source_clip = engine.serve_utk2(sub, 2)
        _, source_utk1 = engine.serve_utk1(sub, 2)
        assert source_cold == "cold"
        assert source_hit == "hit"
        assert source_clip == "containment"
        assert source_utk1 == "containment"

    def test_skyband_containment_reuse_for_smaller_k(self):
        engine = UTKEngine(random_dataset(3))
        region, sub = random_region_pair(4)
        engine.utk1(region, 3)
        _, source = engine.serve_utk1(sub, 2)  # k=2 < 3: no clip, skyband reuse
        assert source == "skyband-containment"
        assert engine.stats.skyband_containment_hits == 1

    def test_lru_eviction_bounds_engine_caches(self):
        engine = UTKEngine(random_dataset(4), cache_size=2)
        regions = [hyperrectangle([0.05 + 0.2 * i, 0.05], [0.15 + 0.2 * i, 0.15]) for i in range(3)]
        for region in regions:
            engine.utk1(region, 2)
        cache = engine.cache_stats()
        assert cache["utk1"]["size"] <= 2
        assert cache["utk1"]["evictions"] >= 1
        # The first region was evicted: querying it again is not a result hit.
        hits_before = engine.stats.result_hits
        engine.utk1(regions[0], 2)
        assert engine.stats.result_hits == hits_before

    def test_clear_caches(self):
        engine = UTKEngine(random_dataset(5))
        region, _ = random_region_pair(5)
        engine.utk1(region, 2)
        engine.clear_caches()
        assert engine.cache_stats()["utk1"]["size"] == 0
        _, source = engine.serve_utk1(region, 2)
        assert source == "cold"

    def test_lru_replace_keeps_recency_and_counters(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        hits_before = cache.stats()["hits"]
        assert cache.replace("a", 10)
        assert not cache.replace("missing", 0)
        assert cache.stats()["hits"] == hits_before  # no phantom hit recorded
        assert [key for key, _ in cache.scan()] == ["b", "a"]  # recency untouched
        assert cache.get("a") == 10

    def test_lru_evict_where(self):
        cache = LRUCache(8)
        for number in range(5):
            cache.put(number, number * 10)
        removed = cache.evict_where(lambda key, value: key % 2 == 0)
        assert removed == 3
        assert len(cache) == 2 and 1 in cache and 3 in cache
        assert cache.stats()["evictions"] == 3

    def test_evict_by_k_keeps_other_entries(self):
        engine = UTKEngine(random_dataset(8))
        region, _ = random_region_pair(8)
        engine.utk1(region, 2)
        engine.utk1(region, 3)
        counts = engine.evict(k=2)
        assert counts["utk1"] == 1 and counts["skyband"] == 1
        _, source_evicted = engine.serve_utk1(region, 2)
        _, source_kept = engine.serve_utk1(region, 3)
        assert source_evicted != "hit"
        assert source_kept == "hit"

    def test_evict_by_region_containment(self):
        engine = UTKEngine(random_dataset(9))
        region, sub = random_region_pair(9)
        disjoint = hyperrectangle([0.55, 0.05], [0.65, 0.1])
        engine.utk1(sub, 2)
        engine.utk1(disjoint, 2)
        counts = engine.evict(region=region)  # contains sub, not disjoint
        assert counts["utk1"] == 1
        assert counts["k_skyband"] == 0  # region-scoped: per-k memo untouched
        _, source = engine.serve_utk1(disjoint, 2)
        assert source == "hit"

    def test_evict_with_predicate_and_counters(self):
        engine = UTKEngine(random_dataset(10))
        region, _ = random_region_pair(10)
        engine.utk2(region, 2)
        counts = engine.evict(predicate=lambda key, entry: True)
        assert counts["utk2"] == 1
        assert engine.cache_stats()["utk2"]["evictions"] >= 1

    def test_evict_everything_includes_k_skyband_memo(self):
        engine = UTKEngine(random_dataset(11))
        engine.k_skyband(2)
        counts = engine.evict()
        assert counts["k_skyband"] == 1
        assert engine.cache_stats()["k_skyband"]["size"] == 0

    def test_statistics_shape(self):
        engine = UTKEngine(random_dataset(6))
        merged = engine.statistics()
        assert set(merged) == {"engine", "skyband", "utk1", "utk2", "k_skyband"}
        assert merged["engine"]["queries"] == 0

    def test_invalid_queries_rejected(self):
        engine = UTKEngine(random_dataset(7))
        region, _ = random_region_pair(7)
        with pytest.raises(InvalidQueryError):
            engine.utk1(region, 0)
        with pytest.raises(InvalidQueryError):
            engine.utk1(hyperrectangle([0.1], [0.2]), 2)


# ---------------------------------------------------------------- correctness
class TestEngineCorrectness:
    """Engine answers equal the direct API on every reuse path."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_utk1_cold_warm_and_containment_match_direct(self, seed):
        data = random_dataset(seed)
        region, sub = random_region_pair(seed)
        engine = UTKEngine(data)
        for k in (1, 2, 3):
            direct_outer = utk1(data, region, k)
            direct_sub = utk1(data, sub, k)
            cold = engine.utk1(region, k)
            warm = engine.utk1(region, k)
            contained = engine.utk1(sub, k)
            assert cold.indices == direct_outer.indices
            assert warm.indices == direct_outer.indices
            assert contained.indices == direct_sub.indices

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_utk2_cold_warm_and_containment_match_direct(self, seed):
        data = random_dataset(seed, n=70)
        region, sub = random_region_pair(seed + 100)
        engine = UTKEngine(data)
        k = 2
        direct_outer = utk2(data, region, k)
        direct_sub = utk2(data, sub, k)
        cold = engine.utk2(region, k)
        warm = engine.utk2(region, k)
        contained = engine.utk2(sub, k)
        assert cold.distinct_top_k_sets == direct_outer.distinct_top_k_sets
        assert warm.distinct_top_k_sets == direct_outer.distinct_top_k_sets
        assert contained.distinct_top_k_sets == direct_sub.distinct_top_k_sets
        assert contained.result_records == direct_sub.result_records

    def test_containment_witnesses_are_valid_certificates(self):
        data = random_dataset(41)
        region, sub = random_region_pair(41)
        engine = UTKEngine(data)
        engine.utk2(region, 2)
        contained = engine.utk1(sub, 2)  # served by clipping the cached UTK2
        assert contained.witnesses
        for index, witness in contained.witnesses.items():
            assert sub.contains(witness, tol=1e-7)
            assert index in brute_force_top_k(data.values, witness, 2)

    def test_clipped_partitions_agree_with_brute_force(self):
        data = random_dataset(43, n=60)
        region, sub = random_region_pair(43)
        direct = utk2(data, region, 2)
        clipped = clip_partitioning(direct, sub)
        assert len(clipped) > 0
        for partition in clipped:
            probe = partition.interior_point
            assert probe is not None
            assert sub.contains(probe, tol=1e-7)
            assert brute_force_top_k(data.values, probe, 2) == set(partition.top_k)

    def test_refiltered_skyband_matches_direct_computation(self):
        data = random_dataset(47)
        region, sub = random_region_pair(47)
        for k_outer, k_sub in ((3, 3), (3, 2)):
            outer = compute_r_skyband(data.values, region, k_outer)
            refiltered = refilter_r_skyband(outer, sub, k_sub)
            direct = compute_r_skyband(data.values, sub, k_sub)
            assert refiltered.members() == direct.members()
            assert refiltered.ancestors == direct.ancestors
            assert refiltered.descendants == direct.descendants

    def test_api_engine_fast_path_matches_one_shot(self):
        data = random_dataset(53)
        region, _ = random_region_pair(53)
        engine = make_engine(data)
        assert utk1(data, region, 2, engine=engine).indices == \
            utk1(data, region, 2).indices
        assert utk2(data, region, 2, engine=engine).distinct_top_k_sets == \
            utk2(data, region, 2).distinct_top_k_sets
        assert engine.stats.queries == 2


# ---------------------------------------------------------------------- batch
class TestBatchExecution:
    def test_batch_matches_serial_and_parallel(self):
        data = random_dataset(61)
        region, sub = random_region_pair(61)
        queries = [
            BatchQuery(region, 2, "both"),
            BatchQuery(sub, 2, "utk1"),
            BatchQuery(sub, 2, "utk1"),
            BatchQuery(sub, 1, "utk2"),
        ]
        serial = UTKEngine(data).run_batch(queries)
        threaded = UTKEngine(data).run_batch(queries, workers=4)
        assert len(serial) == len(threaded) == 4
        for left, right in zip(serial, threaded):
            if left.utk1 is not None:
                assert left.utk1.indices == right.utk1.indices
            if left.utk2 is not None:
                assert left.utk2.distinct_top_k_sets == \
                    right.utk2.distinct_top_k_sets

    def test_batch_sources_and_summary(self):
        data = random_dataset(67)
        region, sub = random_region_pair(67)
        engine = UTKEngine(data)
        items = engine.run_batch([(region, 2, "utk2"), (region, 2, "utk2"), (sub, 2, "utk2")])
        assert items[0].sources == {"utk2": "cold"}
        assert items[1].sources == {"utk2": "hit"}
        assert items[2].sources == {"utk2": "containment"}
        summary = summarize_batch(items)
        assert summary["queries"] == 3
        assert summary["sources"] == {"cold": 1, "containment": 1, "hit": 1}
        assert summary["queries_per_second"] > 0
        assert engine.stats.batches == 1
        assert engine.stats.batch_queries == 3

    def test_query_normalization(self):
        region, _ = random_region_pair(71)
        assert as_batch_query((region, 2)).version == "utk1"
        assert as_batch_query({"region": region, "k": 2, "version": "both"}).version == "both"
        spec = engine_query_stream(3, 1, seed=0)[0]
        normalized = as_batch_query(spec)
        assert normalized.k == spec.k and normalized.region is spec.region
        with pytest.raises(InvalidQueryError):
            as_batch_query("not a query")
        with pytest.raises(InvalidQueryError):
            BatchQuery(region, 2, "utk3")

    def test_empty_batch(self):
        engine = UTKEngine(random_dataset(73))
        assert engine.run_batch([]) == []


# ------------------------------------------------------------------ workloads
class TestQueryStream:
    def test_stream_is_deterministic(self):
        first = engine_query_stream(3, 20, seed=5)
        second = engine_query_stream(3, 20, seed=5)
        assert [spec.k for spec in first] == [spec.k for spec in second]
        for left, right in zip(first, second):
            assert region_signature(left.region) == region_signature(right.region)

    def test_stream_exercises_reuse(self):
        parents = 3
        stream = engine_query_stream(
            3, 40, parents=parents, repeat_prob=0.4, subregion_prob=0.5, seed=9
        )
        assert len(stream) == 40
        anchors = stream[:parents]
        signatures = {region_signature(spec.region) for spec in stream}
        assert len(signatures) < 40  # repeats exist
        contained = sum(
            1 for spec in stream[parents:]
            if any(region_contains(anchor.region, spec.region)
                   for anchor in anchors)
            and region_signature(spec.region) not in
            {region_signature(anchor.region) for anchor in anchors})
        assert contained > 0  # drill-downs exist

    def test_stream_k_values_come_from_choices(self):
        choices = (1, 2, 5)
        stream = engine_query_stream(3, 30, k_choices=choices, seed=13)
        assert {spec.k for spec in stream} <= set(choices)
        # Anchors use the broadest k so drill-downs can reuse their filtering.
        assert all(spec.k == 5 for spec in stream[:4])

    def test_zipfian_k_favours_small_k(self):
        rng = np.random.default_rng(17)
        draws = [zipfian_k((1, 2, 5, 10), 1.5, rng) for _ in range(500)]
        assert set(draws) <= {1, 2, 5, 10}
        assert draws.count(1) > draws.count(10)

    def test_stream_validation(self):
        with pytest.raises(InvalidQueryError):
            engine_query_stream(3, -1)
        with pytest.raises(InvalidQueryError):
            engine_query_stream(3, 5, repeat_prob=0.8, subregion_prob=0.8)
        with pytest.raises(InvalidQueryError):
            engine_query_stream(1, 5)
