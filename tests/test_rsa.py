"""Tests for RSA (UTK1), including the paper's running example and oracles."""

import numpy as np
import pytest

from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree

from helpers import brute_force_top_k, exact_utk1_d2, sampled_top_k_union


class TestPaperExample:
    def test_figure1_utk1_result(self, paper_hotels, paper_region):
        """The paper's Figure 1: UTK1 output for k=2 is {p1, p2, p4, p6}."""
        result = RSA(paper_hotels.values, paper_region, 2).run()
        assert result.labels(paper_hotels) == ["p1", "p2", "p4", "p6"]

    def test_figure1_excludes_p7(self, paper_hotels, paper_region):
        """p7 is on the skyline yet never enters the top-2 within R."""
        result = RSA(paper_hotels.values, paper_region, 2).run()
        assert 6 not in result

    def test_figure1_witnesses_valid(self, paper_hotels, paper_region):
        result = RSA(paper_hotels.values, paper_region, 2).run()
        for index in result.indices:
            witness = result.witness_of(index)
            assert paper_region.contains(witness, tol=1e-7)
            assert index in brute_force_top_k(paper_hotels.values, witness, 2)

    def test_figure1_k1(self, paper_hotels, paper_region):
        result = RSA(paper_hotels.values, paper_region, 1).run()
        # Figure 1(b): the rank-1 hotel across R is p1, p2 or p4.
        assert set(result.labels(paper_hotels)) == {"p1", "p2", "p4"}


class TestValidation:
    def test_rejects_nonpositive_k(self, paper_hotels, paper_region):
        with pytest.raises(InvalidQueryError):
            RSA(paper_hotels.values, paper_region, 0)

    def test_rejects_dimension_mismatch(self, paper_hotels):
        region = hyperrectangle([0.1], [0.2])
        with pytest.raises(InvalidQueryError):
            RSA(paper_hotels.values, region, 2)

    def test_rejects_unknown_candidate_order(self, paper_hotels, paper_region):
        with pytest.raises(InvalidQueryError):
            RSA(paper_hotels.values, paper_region, 2, candidate_order="random")

    def test_rejects_1d_values(self, paper_region):
        with pytest.raises(InvalidQueryError):
            RSA(np.array([1.0, 2.0, 3.0]), paper_region, 2)


class TestExactnessD2:
    """Exact oracle: for d=2 the problem can be solved by a breakpoint sweep."""

    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 3), (3, 5), (4, 8)])
    def test_matches_exact_oracle(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((120, 2)) * 10
        lo, hi = 0.3, 0.7
        region = hyperrectangle([lo], [hi])
        result = RSA(values, region, k).run()
        assert set(result.indices) == exact_utk1_d2(values, lo, hi, k)

    def test_narrow_region(self):
        rng = np.random.default_rng(9)
        values = rng.random((150, 2))
        region = hyperrectangle([0.501], [0.509])
        result = RSA(values, region, 3).run()
        assert set(result.indices) == exact_utk1_d2(values, 0.501, 0.509, 3)


class TestHigherDimensions:
    @pytest.mark.parametrize("seed,d,k", [(0, 3, 2), (1, 3, 5), (2, 4, 3), (3, 5, 2)])
    def test_contains_all_sampled_topk_and_witnesses_hold(self, seed, d, k):
        rng = np.random.default_rng(seed)
        values = rng.random((150, d)) * 10
        lower = np.full(d - 1, 0.08)
        upper = np.full(d - 1, 0.08 + 0.6 / (d - 1))
        region = hyperrectangle(lower, upper)
        result = RSA(values, region, k).run()
        # No false negatives (probabilistic check).
        sampled = sampled_top_k_union(values, region, k, samples=1500, seed=seed)
        assert sampled.issubset(set(result.indices))
        # No false positives (witness certificates).
        for index in result.indices:
            witness = result.witness_of(index)
            assert region.contains(witness, tol=1e-7)
            assert index in brute_force_top_k(values, witness, k)

    def test_index_and_bruteforce_filtering_agree(self):
        rng = np.random.default_rng(11)
        values = rng.random((900, 3))
        region = hyperrectangle([0.2, 0.1], [0.4, 0.3])
        with_tree = RSA(values, region, 3, tree=RTree(values)).run()
        without_tree = RSA(values, region, 3).run()
        assert with_tree.indices == without_tree.indices


class TestOptionsAndAblations:
    @pytest.fixture
    def setting(self):
        rng = np.random.default_rng(5)
        values = rng.random((200, 3)) * 10
        region = hyperrectangle([0.1, 0.15], [0.35, 0.3])
        return values, region

    def test_drill_does_not_change_result(self, setting):
        values, region = setting
        with_drill = RSA(values, region, 4, use_drill=True).run()
        without_drill = RSA(values, region, 4, use_drill=False).run()
        assert with_drill.indices == without_drill.indices

    def test_lemma1_does_not_change_result(self, setting):
        values, region = setting
        with_lemma = RSA(values, region, 4, use_lemma1=True).run()
        without_lemma = RSA(values, region, 4, use_lemma1=False).run()
        assert with_lemma.indices == without_lemma.indices

    @pytest.mark.parametrize("order", ["count_desc", "count_asc", "index"])
    def test_candidate_order_does_not_change_result(self, setting, order):
        values, region = setting
        reference = RSA(values, region, 3).run()
        result = RSA(values, region, 3, candidate_order=order).run()
        assert result.indices == reference.indices

    def test_precomputed_skyband_reused(self, setting):
        values, region = setting
        skyband = compute_r_skyband(values, region, 3)
        result = RSA(values, region, 3, skyband=skyband).run()
        reference = RSA(values, region, 3).run()
        assert result.indices == reference.indices

    def test_stats_populated(self, setting):
        values, region = setting
        algorithm = RSA(values, region, 4)
        result = algorithm.run()
        assert result.stats["candidates"] >= len(result)
        assert result.stats["verify_calls"] >= 1


class TestEdgeCases:
    def test_k_at_least_dataset_size(self, paper_region):
        values = np.random.default_rng(0).random((5, 3))
        result = RSA(values, paper_region, 10).run()
        assert result.indices == list(range(5))

    def test_k_equals_skyband_size(self, paper_region):
        # With k >= |r-skyband| every candidate is reported.
        values = np.random.default_rng(1).random((40, 3))
        algorithm = RSA(values, paper_region, 30)
        result = algorithm.run()
        assert len(result) == result.stats["candidates"]

    def test_single_record_dataset(self, paper_region):
        values = np.array([[1.0, 2.0, 3.0]])
        result = RSA(values, paper_region, 1).run()
        assert result.indices == [0]

    def test_duplicate_records(self, paper_region):
        values = np.vstack([np.full((3, 3), 5.0), np.random.default_rng(2).random((20, 3))])
        result = RSA(values, paper_region, 2).run()
        assert len(result) >= 1

    def test_result_minimality_against_utk2(self, paper_hotels, paper_region):
        from repro.core.jaa import JAA
        utk2 = JAA(paper_hotels.values, paper_region, 2).run()
        utk1 = RSA(paper_hotels.values, paper_region, 2).run()
        assert set(utk1.indices) == set(utk2.result_records)
