"""Unit tests for upper-hull membership and hull utilities."""

import numpy as np

from repro.core.preference import scores
from repro.geometry.convex_hull import (
    hull_vertices,
    is_upper_hull_member,
    upper_hull_members,
)


class TestUpperHullMembership:
    def test_single_record_is_member(self):
        assert is_upper_hull_member(np.array([[1.0, 2.0]]), 0)

    def test_dominated_record_is_not_member(self):
        points = np.array([[1.0, 1.0], [0.5, 0.5]])
        assert is_upper_hull_member(points, 0)
        assert not is_upper_hull_member(points, 1)

    def test_interior_of_segment_is_not_member(self):
        # The middle point lies on the segment between the extremes and can
        # never be the unique top-1.
        points = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        assert is_upper_hull_member(points, 0)
        assert is_upper_hull_member(points, 1)
        assert not is_upper_hull_member(points, 2)

    def test_point_above_segment_is_member(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0], [0.6, 0.6]])
        assert is_upper_hull_member(points, 2)

    def test_agrees_with_topk_sampling(self):
        rng = np.random.default_rng(5)
        points = rng.random((40, 3))
        members = set(upper_hull_members(points).tolist())
        # Every sampled top-1 must be an upper-hull member.
        for _ in range(300):
            weights = rng.dirichlet(np.ones(3))
            top = int(np.argmax(scores(points, weights[:2])))
            assert top in members


class TestUpperHullMembers:
    def test_empty_input(self):
        assert upper_hull_members(np.zeros((0, 2))).size == 0

    def test_lp_and_qhull_agree_2d(self):
        rng = np.random.default_rng(11)
        points = rng.random((60, 2))
        via_lp = set(upper_hull_members(points, method="lp").tolist())
        via_qhull = set(upper_hull_members(points, method="qhull").tolist())
        # The qhull facet filter may keep a few extra boundary vertices whose
        # facets have a zero normal component; it must never miss one.
        assert via_lp.issubset(via_qhull)

    def test_duplicate_points_do_not_crash(self):
        # Two identical records tie everywhere: neither is a *strict* top-1,
        # so the strict-margin test may exclude both; the dominated third
        # record must never be reported.
        points = np.array([[1.0, 1.0], [1.0, 1.0], [0.2, 0.3]])
        members = upper_hull_members(points)
        assert 2 not in members


class TestHullVertices:
    def test_square_vertices(self):
        points = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float)
        vertices = set(hull_vertices(points).tolist())
        assert vertices == {0, 1, 2, 3}

    def test_few_points_returns_all(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert set(hull_vertices(points).tolist()) == {0, 1}

    def test_degenerate_collinear_falls_back(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]])
        vertices = hull_vertices(points)
        assert vertices.size >= 2
