"""Unit tests for r-skyband computation and the r-dominance graph."""

import numpy as np
import pytest

from repro.core.dominance import RDominance
from repro.core.preference import scores
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.index.rtree import RTree
from repro.skyline.dominance import k_skyband_bruteforce


@pytest.fixture
def region():
    return hyperrectangle([0.05, 0.05], [0.45, 0.25])


def brute_force_r_skyband(values, region, k):
    matrix = RDominance(region).dominance_matrix(values)
    counts = matrix.sum(axis=0)
    return set(np.flatnonzero(counts < k).tolist())


class TestMembership:
    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 3), (3, 5)])
    def test_matches_bruteforce(self, region, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((150, 3)) * 10
        sky = compute_r_skyband(values, region, k)
        assert set(sky.members()) == brute_force_r_skyband(values, region, k)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_index_path_matches_bruteforce(self, region, k):
        rng = np.random.default_rng(10)
        values = rng.random((900, 3)) * 10
        tree = RTree(values)
        sky = compute_r_skyband(values, region, k, tree=tree)
        assert set(sky.members()) == brute_force_r_skyband(values, region, k)
        assert sky.stats.nodes_visited > 0

    def test_subset_of_traditional_skyband(self, region):
        rng = np.random.default_rng(4)
        values = rng.random((200, 3))
        k = 3
        sky = compute_r_skyband(values, region, k)
        traditional = set(k_skyband_bruteforce(values, k).tolist())
        assert set(sky.members()).issubset(traditional)

    def test_contains_every_sampled_topk(self, region):
        rng = np.random.default_rng(5)
        values = rng.random((300, 3))
        k = 3
        sky = compute_r_skyband(values, region, k)
        members = set(sky.members())
        for w in region.sample(200, rng):
            top = np.argsort(-scores(values, w))[:k]
            assert set(top.tolist()).issubset(members)

    def test_empty_dataset_edge(self, region):
        values = np.random.default_rng(0).random((1, 3))
        sky = compute_r_skyband(values, region, 1)
        assert sky.members() == [0]


class TestGraph:
    def test_ancestor_descendant_consistency(self, region):
        rng = np.random.default_rng(6)
        values = rng.random((120, 3)) * 10
        sky = compute_r_skyband(values, region, 4)
        for member in sky.members():
            for ancestor in sky.ancestors[member]:
                assert member in sky.descendants[ancestor]
            for descendant in sky.descendants[member]:
                assert member in sky.ancestors[descendant]

    def test_counts_below_k(self, region):
        rng = np.random.default_rng(7)
        values = rng.random((150, 3)) * 10
        k = 3
        sky = compute_r_skyband(values, region, k)
        for member in sky.members():
            assert sky.count_of(member) < k

    def test_graph_is_acyclic(self, region):
        rng = np.random.default_rng(8)
        values = rng.random((100, 3)) * 10
        sky = compute_r_skyband(values, region, 4)
        for member in sky.members():
            assert member not in sky.ancestors[member]
            assert not (sky.ancestors[member] & sky.descendants[member])

    def test_ancestors_are_transitively_closed(self, region):
        rng = np.random.default_rng(9)
        values = rng.random((100, 3)) * 10
        sky = compute_r_skyband(values, region, 5)
        for member in sky.members():
            for ancestor in sky.ancestors[member]:
                assert sky.ancestors[ancestor].issubset(sky.ancestors[member])

    def test_row_lookup(self, region):
        rng = np.random.default_rng(11)
        values = rng.random((60, 3))
        sky = compute_r_skyband(values, region, 2)
        for member in sky.members():
            assert np.allclose(sky.row_of(member), values[member])

    def test_subset_values(self, region):
        rng = np.random.default_rng(12)
        values = rng.random((60, 3))
        sky = compute_r_skyband(values, region, 2)
        members = sky.members()[:3]
        assert np.allclose(sky.subset_values(members), values[members])
