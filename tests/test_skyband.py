"""Unit tests for skyline/k-skyband computation (brute force and BBS paths)."""

import numpy as np
import pytest

from repro.core.preference import scores
from repro.index.rtree import RTree
from repro.skyline.dominance import (
    dominance_matrix,
    dominator_sets,
    k_skyband_bruteforce,
    skyline_bruteforce,
)
from repro.skyline.skyband import k_skyband, onion_candidates


class TestBruteForce:
    def test_dominance_matrix_simple(self):
        values = np.array([[2.0, 2.0], [1.0, 1.0], [2.0, 1.0]])
        matrix = dominance_matrix(values)
        assert matrix[0, 1] and matrix[0, 2] and matrix[2, 1]
        assert not matrix[1, 0] and not matrix[2, 0]

    def test_skyline_of_staircase(self):
        values = np.array([[4.0, 1.0], [3.0, 2.0], [2.0, 3.0], [1.0, 4.0], [1.0, 1.0]])
        assert skyline_bruteforce(values).tolist() == [0, 1, 2, 3]

    def test_k_skyband_nested(self):
        rng = np.random.default_rng(0)
        values = rng.random((100, 3))
        for k in (1, 2, 4):
            band_k = set(k_skyband_bruteforce(values, k).tolist())
            band_next = set(k_skyband_bruteforce(values, k + 1).tolist())
            assert band_k.issubset(band_next)

    def test_skyline_equals_1_skyband(self):
        rng = np.random.default_rng(1)
        values = rng.random((80, 2))
        assert set(skyline_bruteforce(values).tolist()) == \
            set(k_skyband_bruteforce(values, 1).tolist())

    def test_dominator_sets(self):
        values = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        sets = dominator_sets(values)
        assert sets == [set(), {0}, {0, 1}]


class TestIndexBasedSkyband:
    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 3), (3, 5)])
    def test_bbs_matches_bruteforce(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((700, 3))
        tree = RTree(values)
        via_bbs = k_skyband(values, k, tree=tree)
        via_brute = k_skyband_bruteforce(values, k)
        assert via_bbs.tolist() == via_brute.tolist()

    def test_small_dataset_skips_index(self):
        rng = np.random.default_rng(4)
        values = rng.random((50, 4))
        result, stats = k_skyband(values, 2, return_stats=True)
        assert stats.nodes_visited == 0
        assert result.tolist() == k_skyband_bruteforce(values, 2).tolist()

    def test_contains_every_sampled_topk(self):
        rng = np.random.default_rng(5)
        values = rng.random((600, 3))
        k = 3
        band = set(k_skyband(values, k, tree=RTree(values)).tolist())
        for _ in range(100):
            weights = rng.dirichlet(np.ones(3))[:2]
            top = np.argsort(-scores(values, weights))[:k]
            assert set(top.tolist()).issubset(band)


class TestOnionCandidates:
    def test_subset_of_skyband(self):
        rng = np.random.default_rng(6)
        values = rng.random((200, 3))
        k = 3
        onion = set(onion_candidates(values, k).tolist())
        band = set(k_skyband(values, k).tolist())
        assert onion.issubset(band)

    def test_contains_every_sampled_topk(self):
        rng = np.random.default_rng(7)
        values = rng.random((150, 2))
        k = 2
        onion = set(onion_candidates(values, k).tolist())
        for _ in range(200):
            weights = rng.dirichlet(np.ones(2))[:1]
            top = np.argsort(-scores(values, weights))[:k]
            assert set(top.tolist()).issubset(onion)

    def test_empty_when_k_zero_layers(self):
        values = np.random.default_rng(8).random((20, 2))
        assert onion_candidates(values, 0).size == 0
