"""Property-based agreement tests for the vectorized kernel layer.

Every kernel in :mod:`repro.kernels` is checked three ways:

* against its ``*_loop`` reference (the per-record path it replaced), which
  must agree *bit-for-bit* — both run the same elementwise float operations;
* against the deliberately scalar, per-pair oracles in :mod:`helpers`, which
  share no broadcasting code with the kernels;
* on engineered degenerate inputs with ties at exactly ``±tol``.

Hypothesis drives sizes, dimensionalities, tolerances, and tie injection;
values are drawn from coarse grids so exact ties arise constantly.
"""

from __future__ import annotations

import numpy as np
from helpers import (
    oracle_dominance_counts,
    oracle_dominance_matrix,
    oracle_dominators_mask,
    oracle_halfspace_values,
    oracle_r_dominance_matrix,
    oracle_r_dominators_mask,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preference import scores
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.kernels import (
    dominance_counts,
    dominance_counts_loop,
    dominance_matrix,
    dominance_matrix_loop,
    dominators_mask,
    dominators_mask_loop,
    evaluate_halfspaces,
    evaluate_halfspaces_loop,
    halfspace_coefficients,
    halfspace_coefficients_loop,
    r_dominance_matrix,
    r_dominance_matrix_loop,
    r_dominators_mask,
    r_dominators_mask_loop,
    vertex_scores,
)

TOLERANCES = (0.0, 1e-9, 1e-6, 1e-3, 0.05)

COMMON = settings(max_examples=40, deadline=None)


@st.composite
def dominance_case(draw):
    """Random ``(values, tol, block)`` with engineered ties at exactly ±tol."""
    n = draw(st.integers(min_value=0, max_value=24))
    d = draw(st.integers(min_value=1, max_value=5))
    tol = draw(st.sampled_from(TOLERANCES))
    grid = draw(st.sampled_from((4, 8, 64)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    block = draw(st.sampled_from((None, 1, 3)))
    rng = np.random.default_rng(seed)
    values = rng.integers(0, grid, size=(n, d)).astype(float) / grid
    if n >= 4:
        values[1] = values[0]
        values[2] = values[0] + tol
        values[3] = values[0] - tol
    return values, tol, block


@st.composite
def score_case(draw):
    """Random ``(vertex_scores, tol, block)`` with engineered tied columns."""
    n = draw(st.integers(min_value=0, max_value=20))
    v = draw(st.integers(min_value=1, max_value=6))
    tol = draw(st.sampled_from(TOLERANCES))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    block = draw(st.sampled_from((None, 2)))
    rng = np.random.default_rng(seed)
    grid = draw(st.sampled_from((4, 32)))
    matrix = rng.integers(0, grid, size=(v, n)).astype(float) / grid
    if n >= 4:
        matrix[:, 1] = matrix[:, 0]
        matrix[:, 2] = matrix[:, 0] + tol
        matrix[:, 3] = matrix[:, 0] - tol
    return matrix, tol, block


class TestDominanceKernels:
    @COMMON
    @given(dominance_case())
    def test_matrix_agrees_with_loop_and_oracle(self, case):
        values, tol, block = case
        kernel = dominance_matrix(values, tol, block=block)
        assert np.array_equal(kernel, dominance_matrix_loop(values, tol))
        assert np.array_equal(kernel, oracle_dominance_matrix(values, tol))

    @COMMON
    @given(dominance_case())
    def test_counts_agree_with_loop_and_oracle(self, case):
        values, tol, block = case
        kernel = dominance_counts(values, tol, block=block)
        assert np.array_equal(kernel, dominance_counts_loop(values, tol))
        assert np.array_equal(kernel, oracle_dominance_counts(values, tol))

    @COMMON
    @given(dominance_case())
    def test_dominators_mask_agrees(self, case):
        values, tol, _ = case
        if values.shape[0] == 0:
            return
        for probe in (values[0], values[0] + tol, values.mean(axis=0)):
            kernel = dominators_mask(probe, values, tol)
            assert np.array_equal(kernel, dominators_mask_loop(probe, values, tol))
            assert np.array_equal(kernel, oracle_dominators_mask(probe, values, tol))

    def test_exact_tie_semantics(self):
        # A record exactly tol better never strictly dominates; one 2*tol
        # better always does.
        tol = 1e-9
        base = np.array([0.5, 0.5])
        values = np.vstack([base, base + tol, base + 2 * tol, base])
        matrix = dominance_matrix(values, tol)
        assert not matrix[1, 0]
        assert matrix[2, 0]
        assert not matrix[0, 3] and not matrix[3, 0]
        assert np.array_equal(matrix, oracle_dominance_matrix(values, tol))


class TestHalfspaceKernels:
    @COMMON
    @given(dominance_case())
    def test_coefficients_agree_bitwise(self, case):
        values, _, _ = case
        if values.shape[0] < 2 or values.shape[1] < 2:
            return
        normals, offsets = halfspace_coefficients(values[0], values[1:])
        loop_normals, loop_offsets = halfspace_coefficients_loop(values[0], values[1:])
        assert np.array_equal(normals, loop_normals)
        assert np.array_equal(offsets, loop_offsets)

    @COMMON
    @given(dominance_case())
    def test_evaluation_agrees(self, case):
        values, _, _ = case
        if values.shape[0] < 2 or values.shape[1] < 2:
            return
        normals, offsets = halfspace_coefficients(values[0], values[1:])
        rng = np.random.default_rng(7)
        points = rng.random((5, values.shape[1] - 1))
        kernel = evaluate_halfspaces(normals, offsets, points)
        assert np.allclose(kernel, evaluate_halfspaces_loop(normals, offsets, points), rtol=1e-12)
        assert np.allclose(kernel, oracle_halfspace_values(normals, offsets, points), rtol=1e-12)

    @COMMON
    @given(dominance_case())
    def test_vertex_scores_match_preference_scores(self, case):
        values, _, _ = case
        if values.shape[0] == 0 or values.shape[1] < 2:
            return
        rng = np.random.default_rng(13)
        vertices = rng.random((4, values.shape[1] - 1)) * 0.2
        assert np.array_equal(vertex_scores(values, vertices), scores(values, vertices))


class TestRDominanceKernels:
    @COMMON
    @given(score_case())
    def test_matrix_agrees_with_loop_and_oracle(self, case):
        matrix, tol, block = case
        kernel = r_dominance_matrix(matrix, tol, block=block)
        assert np.array_equal(kernel, r_dominance_matrix_loop(matrix, tol))
        assert np.array_equal(kernel, oracle_r_dominance_matrix(matrix, tol))

    @COMMON
    @given(score_case())
    def test_mask_agrees_with_loop_and_oracle(self, case):
        matrix, tol, _ = case
        if matrix.shape[1] == 0:
            return
        point, pool = matrix[:, 0], matrix[:, 1:]
        kernel = r_dominators_mask(point, pool, tol)
        assert np.array_equal(kernel, r_dominators_mask_loop(point, pool, tol))
        assert np.array_equal(kernel, oracle_r_dominators_mask(point, pool, tol))

    def test_exact_tie_semantics(self):
        # Equal scores everywhere: no r-dominance either way; tol better
        # everywhere: still no strict dominance; 2*tol better: dominates.
        # Powers of two keep the score differences exact in floating point.
        tol = 2.0**-30
        base = np.array([0.25, 0.5, 0.75])
        scores_matrix = np.column_stack([base, base, base + tol, base + 2 * tol])
        matrix = r_dominance_matrix(scores_matrix, tol)
        assert not matrix[0, 1] and not matrix[1, 0]
        assert not matrix[2, 0]
        assert matrix[3, 0]
        assert np.array_equal(matrix, oracle_r_dominance_matrix(scores_matrix, tol))


class TestSkybandAdjacency:
    def test_restricted_counts_match_ancestor_intersections(self):
        rng = np.random.default_rng(99)
        values = rng.random((120, 3)) * 10.0
        region = hyperrectangle([0.1, 0.1], [0.4, 0.3])
        skyband = compute_r_skyband(values, region, 3)
        members = skyband.members()
        if len(members) < 2:
            return
        stride = max(1, len(members) // 7)
        subset = members[::stride]
        counts = skyband.restricted_counts(subset)
        subset_set = set(subset)
        expected = [len(skyband.ancestors[m] & subset_set) for m in subset]
        assert counts.tolist() == expected

    def test_adjacency_reconstructed_from_ancestors(self):
        rng = np.random.default_rng(5)
        values = rng.random((60, 3)) * 10.0
        region = hyperrectangle([0.1, 0.1], [0.4, 0.3])
        skyband = compute_r_skyband(values, region, 2)
        rebuilt = type(skyband)(
            indices=skyband.indices,
            values=skyband.values,
            ancestors=skyband.ancestors,
            descendants=skyband.descendants,
            region=skyband.region,
        )
        assert np.array_equal(rebuilt.adjacency, skyband.adjacency)
