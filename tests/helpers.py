"""Correctness oracles shared across the test-suite.

The oracles here are deliberately independent from the library's algorithms:

* ``exact_utk1_d2`` / ``exact_utk2_d2`` — for 2-dimensional data the
  preference domain is a segment, so UTK can be solved exactly by sweeping
  over the breakpoints where two records tie.
* ``sampled_top_k_union`` — a dense random sample of weight vectors; the
  union of their top-k sets is a subset of the true UTK1 answer.
* ``brute_force_top_k`` — plain full-scoring top-k with deterministic ties.

This module lives next to the tests (not inside ``conftest.py``) so that the
test files can import it absolutely (``from helpers import ...``) under any
pytest invocation, including the project's tier-1 command run from the
repository root.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.preference import scores


def exact_utk1_d2(values: np.ndarray, lo: float, hi: float, k: int) -> set[int]:
    """Exact UTK1 for 2-dimensional data over the weight interval [lo, hi].

    The score of every record is linear in the single reduced weight, so the
    ranking only changes at pairwise tie points.  Evaluating the top-k in the
    interior of every sub-interval between consecutive breakpoints (plus the
    interval endpoints) enumerates every reachable top-k set exactly.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        # offsets[i] + grad[i] * w == offsets[j] + grad[j] * w
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    probes = []
    for a, b in zip(points[:-1], points[1:]):
        probes.append((a + b) / 2.0)
    probes.extend([lo, hi])
    members: set[int] = set()
    for w in probes:
        row = scores(values, np.array([w]))
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def exact_utk2_d2(values: np.ndarray, lo: float, hi: float, k: int) -> list[tuple[float, float, frozenset[int]]]:
    """Exact UTK2 for 2-dimensional data: (interval, top-k set) triples."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    segments = []
    for a, b in zip(points[:-1], points[1:]):
        mid = (a + b) / 2.0
        row = scores(values, np.array([mid]))
        top = frozenset(np.argsort(-row, kind="stable")[:k].tolist())
        segments.append((a, b, top))
    return segments


def sampled_top_k_union(values: np.ndarray, region, k: int,
                        samples: int = 2000, seed: int = 0) -> set[int]:
    """Union of top-k sets over a dense sample of the region (lower bound of UTK1)."""
    rng = np.random.default_rng(seed)
    weights = region.sample(samples, rng)
    score_matrix = scores(values, weights)
    members: set[int] = set()
    for row in score_matrix:
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def brute_force_top_k(values: np.ndarray, weights, k: int) -> set[int]:
    """Top-k indices by full scoring (deterministic tie-break by index)."""
    row = scores(values, weights)
    order = np.lexsort((np.arange(row.shape[0]), -row))
    return set(int(i) for i in order[:k])


# --------------------------------------------------------------------------
# Kernel oracles: deliberately scalar, per-pair implementations of the batch
# primitives in ``repro.kernels``, written without any broadcasting so they
# share no code (and no bugs) with the kernels they check.

def oracle_dominance_matrix(values: np.ndarray, tol: float) -> np.ndarray:
    """Per-pair traditional-dominance matrix: ``[i, j]`` iff ``i`` dominates ``j``."""
    values = np.asarray(values, dtype=float)
    n, d = values.shape
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            geq = all(values[i, k] >= values[j, k] - tol for k in range(d))
            gt = any(values[i, k] > values[j, k] + tol for k in range(d))
            out[i, j] = geq and gt
    return out


def oracle_dominance_counts(values: np.ndarray, tol: float) -> np.ndarray:
    """Per-record dominator counts derived from the per-pair matrix."""
    return oracle_dominance_matrix(values, tol).sum(axis=0)


def oracle_dominators_mask(point, pool: np.ndarray, tol: float) -> np.ndarray:
    """Per-member mask of pool records dominating ``point``."""
    point = np.asarray(point, dtype=float).reshape(-1)
    pool = np.asarray(pool, dtype=float)
    out = np.zeros(pool.shape[0], dtype=bool)
    for i in range(pool.shape[0]):
        geq = all(pool[i, k] >= point[k] - tol for k in range(pool.shape[1]))
        gt = any(pool[i, k] > point[k] + tol for k in range(pool.shape[1]))
        out[i] = geq and gt
    return out


def oracle_r_dominance_matrix(vertex_scores: np.ndarray, tol: float) -> np.ndarray:
    """Per-pair r-dominance from ``(v, n)`` vertex scores."""
    vertex_scores = np.asarray(vertex_scores, dtype=float)
    v, n = vertex_scores.shape
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            diffs = [vertex_scores[w, i] - vertex_scores[w, j] for w in range(v)]
            out[i, j] = all(d >= -tol for d in diffs) and any(d > tol for d in diffs)
    return out


def oracle_r_dominators_mask(point_scores, pool_scores, tol: float) -> np.ndarray:
    """Per-member r-dominance of pool records over a probe, from vertex scores."""
    point_scores = np.asarray(point_scores, dtype=float)
    pool_scores = np.asarray(pool_scores, dtype=float)
    v, n = pool_scores.shape
    out = np.zeros(n, dtype=bool)
    for j in range(n):
        diffs = [pool_scores[w, j] - point_scores[w] for w in range(v)]
        out[j] = all(d >= -tol for d in diffs) and any(d > tol for d in diffs)
    return out


def oracle_halfspace_values(
    normals: np.ndarray, offsets: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Per-pair signed slack ``normals[i] @ points[j] - offsets[i]``."""
    normals = np.asarray(normals, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    points = np.asarray(points, dtype=float)
    out = np.zeros((normals.shape[0], points.shape[0]), dtype=float)
    for i in range(normals.shape[0]):
        for j in range(points.shape[0]):
            out[i, j] = float(np.dot(normals[i], points[j])) - offsets[i]
    return out
