"""Correctness oracles shared across the test-suite.

The oracles here are deliberately independent from the library's algorithms:

* ``exact_utk1_d2`` / ``exact_utk2_d2`` — for 2-dimensional data the
  preference domain is a segment, so UTK can be solved exactly by sweeping
  over the breakpoints where two records tie.
* ``sampled_top_k_union`` — a dense random sample of weight vectors; the
  union of their top-k sets is a subset of the true UTK1 answer.
* ``brute_force_top_k`` — plain full-scoring top-k with deterministic ties.

This module lives next to the tests (not inside ``conftest.py``) so that the
test files can import it absolutely (``from helpers import ...``) under any
pytest invocation, including the project's tier-1 command run from the
repository root.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.preference import scores


def exact_utk1_d2(values: np.ndarray, lo: float, hi: float, k: int) -> set[int]:
    """Exact UTK1 for 2-dimensional data over the weight interval [lo, hi].

    The score of every record is linear in the single reduced weight, so the
    ranking only changes at pairwise tie points.  Evaluating the top-k in the
    interior of every sub-interval between consecutive breakpoints (plus the
    interval endpoints) enumerates every reachable top-k set exactly.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        # offsets[i] + grad[i] * w == offsets[j] + grad[j] * w
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    probes = []
    for a, b in zip(points[:-1], points[1:]):
        probes.append((a + b) / 2.0)
    probes.extend([lo, hi])
    members: set[int] = set()
    for w in probes:
        row = scores(values, np.array([w]))
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def exact_utk2_d2(values: np.ndarray, lo: float, hi: float, k: int) -> list[tuple[float, float, frozenset[int]]]:
    """Exact UTK2 for 2-dimensional data: (interval, top-k set) triples."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    segments = []
    for a, b in zip(points[:-1], points[1:]):
        mid = (a + b) / 2.0
        row = scores(values, np.array([mid]))
        top = frozenset(np.argsort(-row, kind="stable")[:k].tolist())
        segments.append((a, b, top))
    return segments


def sampled_top_k_union(values: np.ndarray, region, k: int,
                        samples: int = 2000, seed: int = 0) -> set[int]:
    """Union of top-k sets over a dense sample of the region (lower bound of UTK1)."""
    rng = np.random.default_rng(seed)
    weights = region.sample(samples, rng)
    score_matrix = scores(values, weights)
    members: set[int] = set()
    for row in score_matrix:
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def brute_force_top_k(values: np.ndarray, weights, k: int) -> set[int]:
    """Top-k indices by full scoring (deterministic tie-break by index)."""
    row = scores(values, weights)
    order = np.lexsort((np.arange(row.shape[0]), -row))
    return set(int(i) for i in order[:k])
