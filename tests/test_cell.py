"""Unit tests for arrangement cells."""

import numpy as np
import pytest

from repro.core.cell import Cell
from repro.core.halfspace import HalfSpace
from repro.core.region import hyperrectangle


@pytest.fixture
def square_region():
    return hyperrectangle([0.1, 0.1], [0.4, 0.4])


@pytest.fixture
def segment_region():
    return hyperrectangle([0.2], [0.8])


class TestBasics:
    def test_root_cell_matches_region(self, square_region):
        cell = Cell(square_region)
        assert cell.dimension == 2
        assert cell.is_full_dimensional()
        assert square_region.contains(cell.interior_point)

    def test_contains(self, square_region):
        cell = Cell(square_region)
        assert cell.contains([0.2, 0.2])
        assert not cell.contains([0.5, 0.2])

    def test_linear_range(self, square_region):
        cell = Cell(square_region)
        low, high = cell.linear_range([1.0, 0.0])
        assert low == pytest.approx(0.1, abs=1e-8)
        assert high == pytest.approx(0.4, abs=1e-8)


class TestRestriction:
    def test_restricted_inside(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([1.0, 0.0]), 0.25)  # u1 >= 0.25
        inside = cell.restricted(h, True)
        outside = cell.restricted(h, False)
        assert inside.contains([0.3, 0.2])
        assert not inside.contains([0.2, 0.2])
        assert outside.contains([0.2, 0.2])
        assert not outside.contains([0.3, 0.2])

    def test_history_tracks_restrictions(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([0.0, 1.0]), 0.2)
        child = cell.restricted(h, True)
        assert len(child.history) == 1
        assert child.history[0] == (h, True)

    def test_empty_restriction_not_full_dimensional(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([1.0, 0.0]), 0.9)  # u1 >= 0.9 misses the region
        child = cell.restricted(h, True)
        assert not child.is_full_dimensional()
        assert child.interior_point is None


class TestClassification:
    def test_fully_inside(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([1.0, 0.0]), 0.05)  # u1 >= 0.05 always holds
        assert cell.classify(h) == "inside"

    def test_fully_outside(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([1.0, 0.0]), 0.9)
        assert cell.classify(h) == "outside"

    def test_proper_split(self, square_region):
        cell = Cell(square_region)
        h = HalfSpace(np.array([1.0, 0.0]), 0.25)
        assert cell.classify(h) == "split"

    def test_tangent_hyperplane_is_not_split(self, square_region):
        cell = Cell(square_region)
        # Boundary exactly at the region's edge: no full-dimensional piece on
        # the other side, so this must not count as a split.
        h = HalfSpace(np.array([1.0, 0.0]), 0.4)
        assert cell.classify(h) in ("outside", "inside")

    def test_classification_1d(self, segment_region):
        cell = Cell(segment_region)
        assert cell.classify(HalfSpace(np.array([1.0]), 0.5)) == "split"
        assert cell.classify(HalfSpace(np.array([1.0]), 0.1)) == "inside"
        assert cell.classify(HalfSpace(np.array([1.0]), 0.9)) == "outside"
        assert cell.classify(HalfSpace(np.array([-1.0]), -0.5)) == "split"

    def test_nested_restrictions_classify_consistently(self, square_region):
        cell = Cell(square_region)
        first = HalfSpace(np.array([1.0, 0.0]), 0.25)
        second = HalfSpace(np.array([0.0, 1.0]), 0.25)
        quadrant = cell.restricted(first, True).restricted(second, True)
        assert quadrant.is_full_dimensional()
        # A half-space cutting only the removed part is now fully outside.
        h = HalfSpace(np.array([-1.0, 0.0]), -0.2)  # u1 <= 0.2
        assert quadrant.classify(h) == "outside"

    def test_interior_point_inside_all_constraints(self, square_region):
        cell = Cell(square_region)
        h1 = HalfSpace(np.array([1.0, 0.2]), 0.3)
        h2 = HalfSpace(np.array([-0.5, 1.0]), 0.05)
        child = cell.restricted(h1, True).restricted(h2, False)
        if child.is_full_dimensional():
            point = child.interior_point
            assert child.contains(point, tol=1e-9)
            assert h1.contains(point)
            assert not h2.contains(point, tol=-1e-12)
