"""Unit tests for minimum bounding boxes."""

import numpy as np
import pytest

from repro.index.mbb import MBB


class TestConstruction:
    def test_of_point(self):
        box = MBB.of_point([1.0, 2.0])
        assert np.allclose(box.lower, [1.0, 2.0])
        assert np.allclose(box.upper, [1.0, 2.0])
        assert box.volume == 0.0

    def test_of_points(self):
        box = MBB.of_points([[1.0, 5.0], [3.0, 2.0]])
        assert np.allclose(box.lower, [1.0, 2.0])
        assert np.allclose(box.upper, [3.0, 5.0])

    def test_top_corner(self):
        box = MBB.of_points([[0.0, 1.0], [2.0, 0.5]])
        assert np.allclose(box.top_corner, [2.0, 1.0])

    def test_dimension(self):
        assert MBB.of_point([0.0, 1.0, 2.0]).dimension == 3


class TestGeometry:
    def test_union(self):
        a = MBB(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBB(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        union = a.union(b)
        assert np.allclose(union.lower, [0.0, -1.0])
        assert np.allclose(union.upper, [3.0, 1.0])

    def test_volume_and_margin(self):
        box = MBB(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert box.volume == pytest.approx(6.0)
        assert box.margin == pytest.approx(5.0)

    def test_enlargement(self):
        a = MBB(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBB(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert a.enlargement(b) == pytest.approx(3.0)

    def test_enlargement_zero_when_contained(self):
        a = MBB(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBB(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        assert a.enlargement(b) == pytest.approx(0.0)

    def test_contains_point(self):
        box = MBB(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.contains_point([0.5, 0.5])
        assert box.contains_point([1.0, 1.0])
        assert not box.contains_point([1.1, 0.5])
        assert box.contains_point([1.05, 0.5], tol=0.1)

    def test_intersects(self):
        a = MBB(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBB(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        c = MBB(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert a.intersects(b)
        assert not a.intersects(c)
        assert b.intersects(c)  # they touch at a corner

    def test_copy_is_independent(self):
        box = MBB(np.array([0.0]), np.array([1.0]))
        clone = box.copy()
        clone.lower[0] = -5.0
        assert box.lower[0] == 0.0
