"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dominance import RDominance, dominates, r_dominates
from repro.core.halfspace import halfspace_between
from repro.core.preference import expand_weights, reduce_weights, scores
from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.index.rtree import RTree
from repro.skyline.dominance import k_skyband_bruteforce
from repro.skyline.skyband import k_skyband

# Reasonably small, well-conditioned record matrices.
record_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 40), st.integers(2, 4)),
    elements=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False, width=32),
)

weight_vectors = st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=2, max_size=5)

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def region_for(dim: int):
    lower = np.full(dim, 0.05)
    upper = np.full(dim, 0.05 + 0.5 / dim)
    return hyperrectangle(lower, upper)


class TestPreferenceProperties:
    @common_settings
    @given(weight_vectors)
    def test_reduce_expand_roundtrip(self, weights):
        reduced = reduce_weights(weights)
        expanded = expand_weights(reduced)
        normalized = np.asarray(weights) / np.sum(weights)
        assert np.allclose(expanded, normalized, atol=1e-9)

    @common_settings
    @given(record_matrices, st.integers(0, 10_000))
    def test_scores_are_convex_combinations(self, values, seed):
        """A record's score always lies between its min and max attribute."""
        rng = np.random.default_rng(seed)
        dim = values.shape[1]
        weights = rng.dirichlet(np.ones(dim))
        s = scores(values, weights[:-1])
        assert np.all(s <= values.max(axis=1) + 1e-9)
        assert np.all(s >= values.min(axis=1) - 1e-9)


class TestDominanceProperties:
    @common_settings
    @given(record_matrices)
    def test_traditional_implies_r_dominance(self, values):
        region = region_for(values.shape[1] - 1)
        for i in range(min(5, values.shape[0])):
            for j in range(min(5, values.shape[0])):
                if i != j and dominates(values[i], values[j]):
                    assert r_dominates(values[i], values[j], region)

    @common_settings
    @given(record_matrices)
    def test_r_dominance_is_antisymmetric(self, values):
        region = region_for(values.shape[1] - 1)
        matrix = RDominance(region).dominance_matrix(values)
        assert not np.any(matrix & matrix.T)

    @common_settings
    @given(record_matrices)
    def test_r_dominance_implies_score_order_at_pivot(self, values):
        region = region_for(values.shape[1] - 1)
        matrix = RDominance(region).dominance_matrix(values)
        pivot_scores = scores(values, region.pivot)
        winners, losers = np.nonzero(matrix)
        for i, j in zip(winners, losers):
            assert pivot_scores[i] >= pivot_scores[j] - 1e-9


class TestHalfspaceProperties:
    @common_settings
    @given(record_matrices, st.integers(0, 10_000))
    def test_halfspace_boundary_separates_scores(self, values, seed):
        rng = np.random.default_rng(seed)
        if values.shape[0] < 2:
            pytest.skip("need two records")
        p, q = values[0], values[1]
        h = halfspace_between(p, q)
        dim = values.shape[1] - 1
        point = rng.dirichlet(np.ones(dim + 1))[:dim]
        pair_scores = scores(np.vstack([p, q]), point)
        if h.contains(point, tol=-1e-9):
            assert pair_scores[0] >= pair_scores[1] - 1e-7
        elif not h.contains(point, tol=1e-9):
            assert pair_scores[0] <= pair_scores[1] + 1e-7


class TestSkybandProperties:
    @common_settings
    @given(record_matrices, st.integers(1, 5))
    def test_r_skyband_subset_of_k_skyband(self, values, k):
        region = region_for(values.shape[1] - 1)
        sky = compute_r_skyband(values, region, k)
        traditional = set(k_skyband_bruteforce(values, k).tolist())
        assert set(sky.members()).issubset(traditional)

    @common_settings
    @given(record_matrices, st.integers(1, 4))
    def test_skyband_monotone_in_k(self, values, k):
        smaller = set(k_skyband_bruteforce(values, k).tolist())
        larger = set(k_skyband_bruteforce(values, k + 1).tolist())
        assert smaller.issubset(larger)

    @common_settings
    @given(arrays(dtype=np.float64, shape=st.tuples(st.integers(40, 120), st.just(3)),
                  elements=st.floats(0.0, 1.0, allow_nan=False, width=32)),
           st.integers(1, 3))
    def test_index_and_bruteforce_skyband_agree(self, values, k):
        tree = RTree(values)
        assert k_skyband(values, k, tree=tree).tolist() == \
            k_skyband_bruteforce(values, k).tolist()


class TestUTKProperties:
    @common_settings
    @given(arrays(dtype=np.float64, shape=st.tuples(st.integers(10, 50), st.just(3)),
                  elements=st.floats(0.0, 10.0, allow_nan=False, width=32)),
           st.integers(1, 3), st.integers(0, 10_000))
    def test_utk1_contains_topk_at_random_point_and_witnesses_hold(self, values, k, seed):
        # Exactness is tolerance-aware: records whose scores tie within the
        # dominance tolerance are interchangeable top-k members, so only
        # records that belong to *every* valid top-k set at the sampled
        # point are required to be reported (fewer than k others score
        # at least their score minus the tolerance).
        tol = 1e-9
        region = region_for(2)
        result = RSA(values, region, k).run()
        rng = np.random.default_rng(seed)
        point = region.sample(1, rng)[0]
        row = scores(values, point)
        reported = set(result.indices)
        for index in range(row.shape[0]):
            others_at_least = int(np.sum(row >= row[index] - tol)) - 1
            if others_at_least < k:
                assert index in reported
        for index in result.indices:
            witness = result.witness_of(index)
            witness_scores = scores(values, witness)
            strictly_better = int(np.sum(witness_scores > witness_scores[index] + tol))
            assert strictly_better < k

    @common_settings
    @given(st.integers(1, 4))
    def test_utk1_monotone_in_k(self, k):
        rng = np.random.default_rng(99)
        values = rng.random((60, 3)) * 10
        region = region_for(2)
        smaller = set(RSA(values, region, k).run().indices)
        larger = set(RSA(values, region, k + 1).run().indices)
        assert smaller.issubset(larger)
