"""Page files, the pinning buffer pool, and the paged R-tree traversal.

Pool invariants under test: pinned pages are never evicted, the resident
set never exceeds capacity, ``hits + misses == lookups`` and
``resident == misses - evictions`` (stats conservation), and exhausting a
fully pinned pool raises instead of over-committing.  The paged tree must
answer exactly like the in-memory R-tree it was serialized from.
"""

import numpy as np
import pytest

from repro.colstore import read_meta, write_pages
from repro.colstore.pages import META_SUFFIX, BufferPool, PagedRTree, page_dtype
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.exceptions import StorageError
from repro.index.rtree import RTree


@pytest.fixture
def values():
    return np.random.default_rng(11).random((300, 3))


@pytest.fixture
def paged(tmp_path, values):
    tree = RTree(values, max_entries=8)
    write_pages(tmp_path / "t.pages", tree.flatten(), fanout=8)
    return PagedRTree(tmp_path / "t.pages", values)


def region():
    return hyperrectangle([0.1, 0.1], [0.3, 0.3])


class TestPageFile:
    def test_page_size_is_padded_power_of_two(self):
        dtype, size = page_dtype(3, 64)
        assert size == dtype.itemsize
        assert size >= 256 and size & (size - 1) == 0

    def test_explicit_page_size_must_fit(self):
        with pytest.raises(StorageError, match="cannot hold"):
            page_dtype(3, 64, page_size=64)

    def test_meta_sidecar_round_trips(self, tmp_path, values):
        tree = RTree(values, max_entries=8)
        meta = write_pages(tmp_path / "t.pages", tree.flatten(), fanout=8)
        assert read_meta(tmp_path / "t.pages") == meta
        assert meta["schema"] == 1
        assert meta["size"] == 300
        assert meta["height"] >= 2

    def test_schema_mismatch_is_rejected(self, tmp_path, values):
        tree = RTree(values, max_entries=8)
        write_pages(tmp_path / "t.pages", tree.flatten(), fanout=8)
        meta_path = tmp_path / ("t.pages" + META_SUFFIX)
        meta_path.write_text(meta_path.read_text().replace('"schema": 1', '"schema": 9'))
        with pytest.raises(StorageError, match="schema"):
            PagedRTree(tmp_path / "t.pages", values)

    def test_fanout_overflow_is_rejected(self, tmp_path, values):
        tree = RTree(values, max_entries=8)
        with pytest.raises(StorageError, match="fanout"):
            write_pages(tmp_path / "t.pages", tree.flatten(), fanout=4)


class TestBufferPool:
    def pool(self, paged, capacity):
        return BufferPool(paged._pages, capacity=capacity)

    def test_stats_conservation(self, paged):
        pool = self.pool(paged, capacity=4)
        n_pages = paged.meta["n_pages"]
        lookups = 0
        rng = np.random.default_rng(3)
        for page in rng.integers(0, n_pages, size=200):
            pool.get(int(page))
            lookups += 1
        stats = pool.stats
        assert stats["hits"] + stats["misses"] == lookups
        assert pool.resident() == stats["misses"] - stats["evictions"]
        assert pool.resident() <= pool.capacity

    def test_pinned_pages_are_never_evicted(self, paged):
        pool = self.pool(paged, capacity=4)
        pinned = pool.pin(0)
        for page in range(1, paged.meta["n_pages"]):
            pool.get(page)
        assert pool.pinned() == 1
        # Still resident, and another lookup of it is a hit, not a reload.
        before = pool.stats["misses"]
        assert pool.get(0) is pinned
        assert pool.stats["misses"] == before
        pool.unpin(0)

    def test_lru_evicts_least_recently_used(self, paged):
        pool = self.pool(paged, capacity=3)
        for page in (0, 1, 2):
            pool.get(page)
        pool.get(0)      # 1 is now the LRU frame
        pool.get(3)      # must evict 1
        misses = pool.stats["misses"]
        pool.get(0)
        pool.get(2)
        pool.get(3)
        assert pool.stats["misses"] == misses  # all still resident
        pool.get(1)
        assert pool.stats["misses"] == misses + 1

    def test_fully_pinned_pool_raises(self, paged):
        pool = self.pool(paged, capacity=2)
        pool.pin(0)
        pool.pin(1)
        with pytest.raises(StorageError, match="pinned"):
            pool.get(2)
        pool.unpin(1)
        pool.get(2)  # one unpinned frame frees it up again

    def test_unbalanced_unpin_raises(self, paged):
        pool = self.pool(paged, capacity=2)
        pool.get(0)
        with pytest.raises(StorageError, match="not pinned"):
            pool.unpin(0)
        with pytest.raises(StorageError, match="not pinned"):
            pool.unpin(7)

    def test_pinned_page_context_balances(self, paged):
        pool = self.pool(paged, capacity=2)
        with pool.pinned_page(0) as node:
            assert pool.pinned() == 1
            assert node.count > 0
        assert pool.pinned() == 0


class TestPagedRTree:
    def test_traversal_matches_in_memory_rtree(self, values, paged):
        tree = RTree(values, max_entries=8)
        for k in (1, 2, 3):
            expected = compute_r_skyband(values, region(), k, tree=tree)
            actual = compute_r_skyband(values, region(), k, tree=paged)
            assert set(actual.members()) == set(expected.members())

    def test_contract_surface(self, values, paged):
        assert len(paged) == 300
        assert paged.dimension == 3
        assert paged.root.is_leaf is False
        assert paged.root.mbb is not None
        assert 0.0 < paged.fill_factor() <= 1.0
        paged.count_access("search", 5)
        assert paged.access_counts["search"] == 5

    def test_page_count_mismatch_is_detected(self, tmp_path, values):
        tree = RTree(values, max_entries=8)
        write_pages(tmp_path / "t.pages", tree.flatten(), fanout=8)
        with open(tmp_path / "t.pages", "ab") as handle:
            handle.write(b"\0" * read_meta(tmp_path / "t.pages")["page_size"])
        with pytest.raises(StorageError, match="pages"):
            PagedRTree(tmp_path / "t.pages", values)
