"""Unit tests for the 1-D interval helpers (repro.geometry.interval)."""

import numpy as np
import pytest

from repro.geometry.interval import Interval


class TestBasics:
    def test_width_and_midpoint(self):
        interval = Interval(1.0, 3.0)
        assert interval.width == pytest.approx(2.0)
        assert interval.midpoint == pytest.approx(2.0)
        assert not interval.is_empty

    def test_empty_interval(self):
        interval = Interval(2.0, 1.0)
        assert interval.is_empty
        assert interval.width < 0.0

    def test_contains(self):
        interval = Interval(0.0, 1.0)
        assert interval.contains(0.5)
        assert interval.contains(0.0)
        assert interval.contains(1.0)
        assert not interval.contains(1.1)
        assert interval.contains(1.05, tol=0.1)

    def test_intersect(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty


class TestClipping:
    def test_clip_positive_coefficient(self):
        interval = Interval(0.0, 10.0).clip_halfline(2.0, 4.0)  # 2x <= 4
        assert interval == Interval(0.0, 2.0)

    def test_clip_negative_coefficient(self):
        interval = Interval(0.0, 10.0).clip_halfline(-1.0, -3.0)  # -x <= -3
        assert interval == Interval(3.0, 10.0)

    def test_clip_zero_coefficient_feasible(self):
        interval = Interval(0.0, 1.0).clip_halfline(0.0, 0.5)
        assert interval == Interval(0.0, 1.0)

    def test_clip_zero_coefficient_infeasible(self):
        interval = Interval(0.0, 1.0).clip_halfline(0.0, -1.0)
        assert interval.is_empty

    def test_from_constraints(self):
        interval = Interval.from_constraints([1.0, -1.0, 1.0], [5.0, 0.0, 3.0])
        assert interval == Interval(0.0, 3.0)

    def test_from_constraints_empty(self):
        interval = Interval.from_constraints([1.0, -1.0], [0.0, -1.0])
        assert interval.is_empty


class TestSampling:
    def test_samples_inside(self):
        interval = Interval(2.0, 4.0)
        points = interval.sample(10)
        assert points.shape == (10,)
        assert np.all(points > 2.0) and np.all(points < 4.0)

    def test_sample_empty_interval(self):
        assert Interval(1.0, 0.0).sample(5).size == 0

    def test_sample_zero_count(self):
        assert Interval(0.0, 1.0).sample(0).size == 0
