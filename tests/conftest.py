"""Shared fixtures for the test-suite.

The correctness oracles (exact d=2 sweeps, sampled unions, brute-force
top-k) live in :mod:`helpers`, a plain module next to the tests, so the test
files can import them absolutely under any pytest invocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import Dataset
from repro.core.region import hyperrectangle


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def paper_hotels() -> Dataset:
    """The 7-hotel dataset of Figure 1 in the paper."""
    return Dataset(
        [
            [8.3, 9.1, 7.2],
            [2.4, 9.6, 8.6],
            [5.4, 1.6, 4.1],
            [2.6, 6.9, 9.4],
            [7.3, 3.1, 2.4],
            [7.9, 6.4, 6.6],
            [8.6, 7.1, 4.3],
        ],
        labels=[f"p{i}" for i in range(1, 8)],
    )


@pytest.fixture
def paper_region():
    """The region R = [0.05, 0.45] x [0.05, 0.25] of Figure 1."""
    return hyperrectangle([0.05, 0.05], [0.45, 0.25])


@pytest.fixture
def small_dataset_3d(rng) -> np.ndarray:
    return rng.random((80, 3)) * 10.0


@pytest.fixture
def small_dataset_4d(rng) -> np.ndarray:
    return rng.random((120, 4))
