"""Shared fixtures and correctness oracles for the test-suite.

The oracles here are deliberately independent from the library's algorithms:

* ``exact_utk1_d2`` — for 2-dimensional data the preference domain is a
  segment, so UTK can be solved exactly by sweeping over the breakpoints
  where two records tie.
* ``sampled_top_k_union`` — a dense random sample of weight vectors; the
  union of their top-k sets is a subset of the true UTK1 answer.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.preference import scores
from repro.core.records import Dataset
from repro.core.region import hyperrectangle


# --------------------------------------------------------------------- fixtures
@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def paper_hotels() -> Dataset:
    """The 7-hotel dataset of Figure 1 in the paper."""
    return Dataset(
        [
            [8.3, 9.1, 7.2],
            [2.4, 9.6, 8.6],
            [5.4, 1.6, 4.1],
            [2.6, 6.9, 9.4],
            [7.3, 3.1, 2.4],
            [7.9, 6.4, 6.6],
            [8.6, 7.1, 4.3],
        ],
        labels=[f"p{i}" for i in range(1, 8)],
    )


@pytest.fixture
def paper_region():
    """The region R = [0.05, 0.45] x [0.05, 0.25] of Figure 1."""
    return hyperrectangle([0.05, 0.05], [0.45, 0.25])


@pytest.fixture
def small_dataset_3d(rng) -> np.ndarray:
    return rng.random((80, 3)) * 10.0


@pytest.fixture
def small_dataset_4d(rng) -> np.ndarray:
    return rng.random((120, 4))


# ---------------------------------------------------------------------- oracles
def exact_utk1_d2(values: np.ndarray, lo: float, hi: float, k: int) -> set[int]:
    """Exact UTK1 for 2-dimensional data over the weight interval [lo, hi].

    The score of every record is linear in the single reduced weight, so the
    ranking only changes at pairwise tie points.  Evaluating the top-k in the
    interior of every sub-interval between consecutive breakpoints (plus the
    interval endpoints) enumerates every reachable top-k set exactly.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        # offsets[i] + grad[i] * w == offsets[j] + grad[j] * w
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    probes = []
    for a, b in zip(points[:-1], points[1:]):
        probes.append((a + b) / 2.0)
    probes.extend([lo, hi])
    members: set[int] = set()
    for w in probes:
        row = scores(values, np.array([w]))
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def exact_utk2_d2(values: np.ndarray, lo: float, hi: float, k: int) -> list[tuple[float, float, frozenset[int]]]:
    """Exact UTK2 for 2-dimensional data: (interval, top-k set) triples."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    breakpoints = {lo, hi}
    for i, j in itertools.combinations(range(n), 2):
        grad_i = values[i, 0] - values[i, 1]
        grad_j = values[j, 0] - values[j, 1]
        if abs(grad_i - grad_j) < 1e-15:
            continue
        w = (values[j, 1] - values[i, 1]) / (grad_i - grad_j)
        if lo < w < hi:
            breakpoints.add(float(w))
    points = sorted(breakpoints)
    segments = []
    for a, b in zip(points[:-1], points[1:]):
        mid = (a + b) / 2.0
        row = scores(values, np.array([mid]))
        top = frozenset(np.argsort(-row, kind="stable")[:k].tolist())
        segments.append((a, b, top))
    return segments


def sampled_top_k_union(values: np.ndarray, region, k: int,
                        samples: int = 2000, seed: int = 0) -> set[int]:
    """Union of top-k sets over a dense sample of the region (lower bound of UTK1)."""
    rng = np.random.default_rng(seed)
    weights = region.sample(samples, rng)
    score_matrix = scores(values, weights)
    members: set[int] = set()
    for row in score_matrix:
        members.update(np.argsort(-row, kind="stable")[:k].tolist())
    return members


def brute_force_top_k(values: np.ndarray, weights, k: int) -> set[int]:
    """Top-k indices by full scoring (deterministic tie-break by index)."""
    row = scores(values, weights)
    order = np.lexsort((np.arange(row.shape[0]), -row))
    return set(int(i) for i in order[:k])
