"""Unit tests for the preference-domain algebra."""

import numpy as np
import pytest

from repro.core.preference import (
    expand_weights,
    preference_dimension,
    reduce_weights,
    score_gradients,
    scores,
    scores_full,
    top_k_at,
)
from repro.exceptions import InvalidQueryError


class TestWeightConversion:
    def test_preference_dimension(self):
        assert preference_dimension(2) == 1
        assert preference_dimension(5) == 4

    def test_preference_dimension_rejects_1d(self):
        with pytest.raises(InvalidQueryError):
            preference_dimension(1)

    def test_reduce_normalizes(self):
        reduced = reduce_weights([2.0, 2.0, 4.0])
        assert np.allclose(reduced, [0.25, 0.25])

    def test_reduce_expand_roundtrip(self):
        original = np.array([0.3, 0.5, 0.2])
        assert np.allclose(expand_weights(reduce_weights(original)), original)

    def test_reduce_rejects_negative(self):
        with pytest.raises(InvalidQueryError):
            reduce_weights([0.5, -0.1, 0.6])

    def test_reduce_rejects_zero_sum(self):
        with pytest.raises(InvalidQueryError):
            reduce_weights([0.0, 0.0])

    def test_reduce_rejects_scalar(self):
        with pytest.raises(InvalidQueryError):
            reduce_weights([1.0])

    def test_expand_rejects_invalid_point(self):
        with pytest.raises(InvalidQueryError):
            expand_weights([0.8, 0.5])  # sums above one


class TestScores:
    def test_reduced_scores_match_full_weights(self):
        rng = np.random.default_rng(0)
        values = rng.random((30, 4))
        weights = rng.dirichlet(np.ones(4))
        via_reduced = scores(values, weights[:3])
        via_full = scores_full(values, weights)
        assert np.allclose(via_reduced, via_full)

    def test_batch_scores_shape(self):
        rng = np.random.default_rng(1)
        values = rng.random((10, 3))
        weights = rng.random((7, 2)) * 0.4
        matrix = scores(values, weights)
        assert matrix.shape == (7, 10)
        for row, weight in zip(matrix, weights):
            assert np.allclose(row, scores(values, weight))

    def test_score_gradients_reconstruct_scores(self):
        rng = np.random.default_rng(2)
        values = rng.random((20, 5))
        gradients, offsets = score_gradients(values)
        weight = np.array([0.1, 0.2, 0.3, 0.1])
        assert np.allclose(offsets + gradients @ weight, scores(values, weight))

    def test_scores_full_rejects_mismatched_weights(self):
        with pytest.raises(InvalidQueryError):
            scores_full(np.zeros((3, 3)), [0.5, 0.5])

    def test_score_gradients_reject_vector(self):
        with pytest.raises(InvalidQueryError):
            score_gradients(np.array([1.0, 2.0]))


class TestTopKAt:
    def test_matches_manual_ranking(self):
        values = np.array([[10.0, 0.0], [0.0, 10.0], [6.0, 6.0]])
        top = top_k_at(values, np.array([0.9]), 2)
        assert list(top) == [0, 2]

    def test_ties_broken_by_index(self):
        values = np.array([[5.0, 5.0], [5.0, 5.0], [1.0, 1.0]])
        top = top_k_at(values, np.array([0.5]), 1)
        assert list(top) == [0]

    def test_k_larger_than_dataset(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert len(top_k_at(values, np.array([0.5]), 10)) == 2

    def test_rejects_nonpositive_k(self):
        with pytest.raises(InvalidQueryError):
            top_k_at(np.zeros((2, 2)), np.array([0.5]), 0)

    def test_rejects_weight_batch(self):
        with pytest.raises(InvalidQueryError):
            top_k_at(np.zeros((2, 2)), np.zeros((3, 1)), 1)
