"""Smoke tests for the per-figure experiment generators (tiny scale)."""

from repro.bench.experiments import (
    experiment_ablation_jaa,
    experiment_ablation_rsa,
    experiment_fig9_2d,
    experiment_fig9_3d,
    experiment_fig10,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_table1,
)

TINY = {
    "cardinality": 300,
    "cardinalities": [200, 400],
    "baseline_cardinality": 150,
    "dimensionality": 3,
    "dimensionalities": [2, 3],
    "k": 2,
    "k_values": [1, 2],
    "baseline_k_values": [1, 2],
    "sigma": 0.05,
    "sigma_values": [0.02, 0.08],
    "queries": 1,
    "seed": 1,
}


class TestCaseStudies:
    def test_fig9_2d_matches_paper_shape(self):
        outcome = experiment_fig9_2d()
        assert "Russell Westbrook" in outcome["utk1_players"]
        assert outcome["counts"]["utk"] < outcome["counts"]["onion"]
        assert outcome["counts"]["onion"] <= outcome["counts"]["skyband"]
        assert outcome["utk2_partitions"]

    def test_fig9_3d_matches_paper_shape(self):
        outcome = experiment_fig9_3d()
        players = set(outcome["utk1_players"])
        assert {"Russell Westbrook", "James Harden"}.issubset(players)
        assert outcome["counts"]["utk"] < outcome["counts"]["onion"]


class TestParameterTable:
    def test_table1_rows(self):
        rows = experiment_table1()
        assert len(rows) == 5
        assert {row["parameter"] for row in rows} >= {"k", "sigma"}


class TestScalingExperiments:
    def test_fig10_rows_have_expected_ordering(self):
        rows = experiment_fig10(TINY)
        for row in rows:
            assert row["utk"] <= row["onion"] <= row["k_skyband"]
            assert row["required_k_for_topk"] >= row["k"]

    def test_fig12_rows(self):
        rows = experiment_fig12(TINY)
        assert len(rows) == 2 * 3  # two cardinalities, three distributions
        assert all(row["rsa_seconds"] > 0 for row in rows)

    def test_fig13_rows(self):
        rows = experiment_fig13(TINY)
        assert [row["d"] for row in rows] == TINY["dimensionalities"]
        assert all(row["rsa_peak_mb"] > 0 for row in rows)

    def test_fig14_result_grows_with_sigma(self):
        rows = experiment_fig14(TINY)
        assert rows[0]["utk1_records"] <= rows[-1]["utk1_records"]


class TestAblations:
    def test_rsa_ablation_same_output_size(self):
        rows = experiment_ablation_rsa(TINY)
        sizes = {row["utk1_records"] for row in rows}
        assert len(sizes) == 1  # every configuration reports the same answer

    def test_jaa_ablation_rows(self):
        rows = experiment_ablation_jaa(TINY)
        assert {row["configuration"] for row in rows} == {"full", "no_lemma1"}
