"""StripedCache vs the single-lock LRUCache: observable equivalence.

The striped cache promises LRUCache semantics as long as no stripe
overflows (any working set of at most ``maxsize // stripes`` distinct keys),
and *exact* predicate-eviction equivalence regardless of stripe placement.
The hypothesis suite drives both caches with the same randomized operation
interleavings and compares every return value plus the final counters; the
direct tests pin down epochs, the atomic conditional puts, and the engine's
``evict(region=)`` surgical path running on striped caches.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.region import hyperrectangle
from repro.engine.cache import LRUCache
from repro.serve.stripes import DEFAULT_STRIPES, StripedCache, stripe_index

STRIPES = 4
PER_STRIPE = 8
MAXSIZE = STRIPES * PER_STRIPE

#: Key pool sized so any working set fits one stripe's share of capacity —
#: the regime where StripedCache promises exact LRUCache equivalence.
KEYS = [f"region-{i:02d}" for i in range(PER_STRIPE)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(0, 99)),
        st.tuples(st.just("touch"), st.sampled_from(KEYS)),
        st.tuples(st.just("replace"), st.sampled_from(KEYS), st.integers(0, 99)),
        st.tuples(st.just("contains"), st.sampled_from(KEYS)),
        st.tuples(st.just("evict_subset"), st.integers(0, 2 ** len(KEYS) - 1)),
        st.tuples(st.just("evict_value_above"), st.integers(0, 99)),
        st.tuples(st.just("clear")),
    ),
    min_size=1,
    max_size=60,
)

common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def apply(cache, op):
    """Run one operation; return its observable outcome."""
    if op[0] == "get":
        return cache.get(op[1], "absent")
    if op[0] == "put":
        return cache.put(op[1], op[2])
    if op[0] == "touch":
        return cache.touch(op[1])
    if op[0] == "replace":
        return cache.replace(op[1], op[2])
    if op[0] == "contains":
        return op[1] in cache
    if op[0] == "evict_subset":
        doomed = {key for bit, key in enumerate(KEYS) if op[1] >> bit & 1}
        return cache.evict_where(lambda key, _value: key in doomed)
    if op[0] == "evict_value_above":
        return cache.evict_where(lambda _key, value: value > op[1])
    cache.clear()
    return None


class TestHypothesisEquivalence:
    @common_settings
    @given(operations)
    def test_interleavings_match_single_lock_cache(self, ops):
        """Same op stream -> same returns, membership and counters."""
        reference = LRUCache(MAXSIZE)
        striped = StripedCache(MAXSIZE, stripes=STRIPES)
        for op in ops:
            assert apply(reference, op) == apply(striped, op), op
        assert len(striped) == len(reference)
        for key in KEYS:
            assert (key in striped) == (key in reference)
        assert striped.hits == reference.hits
        assert striped.misses == reference.misses
        assert striped.evictions == reference.evictions
        assert dict(striped.scan()) == dict(reference.scan())

    @common_settings
    @given(
        st.lists(
            st.tuples(st.sampled_from(KEYS), st.integers(0, 99)),
            min_size=1, max_size=40,
        ),
        st.integers(0, 2 ** len(KEYS) - 1),
    )
    def test_evict_where_key_set_is_placement_independent(self, puts, mask):
        """Predicate eviction drops the same keys under any stripe count."""
        doomed = {key for bit, key in enumerate(KEYS) if mask >> bit & 1}
        survivors = {}
        counts = []
        for stripes in (1, 2, STRIPES, DEFAULT_STRIPES):
            cache = StripedCache(MAXSIZE, stripes=stripes)
            for key, value in puts:
                cache.put(key, value)
            counts.append(cache.evict_where(lambda key, _value: key in doomed))
            survivors[stripes] = dict(cache.scan())
        assert len(set(counts)) == 1
        reference = survivors[1]
        assert all(contents == reference for contents in survivors.values())
        assert not doomed & set(reference)


class TestStripeMechanics:
    def test_stripe_index_is_stable_and_in_range(self):
        for key in KEYS:
            first = stripe_index(key, STRIPES)
            assert 0 <= first < STRIPES
            assert stripe_index(key, STRIPES) == first

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            StripedCache(0)
        with pytest.raises(ValueError):
            StripedCache(8, stripes=0)

    def test_epoch_bumps_only_on_changed_stripes(self):
        cache = StripedCache(MAXSIZE, stripes=STRIPES)
        for key in KEYS:
            cache.put(key, 1)
        victim = KEYS[0]
        before = cache.epochs()
        removed = cache.evict_where(lambda key, _value: key == victim)
        assert removed == 1
        after = cache.epochs()
        touched = cache.stripe_of(victim)
        assert after[touched] == before[touched] + 1
        for index in range(STRIPES):
            if index != touched:
                assert after[index] == before[index]

    def test_put_at_epoch_rejects_moved_stripe(self):
        cache = StripedCache(MAXSIZE, stripes=STRIPES)
        key = KEYS[3]
        epoch = cache.epoch_of(key)
        assert cache.put_at_epoch(key, "fresh", epoch)
        cache.bump_epoch(cache.stripe_of(key))
        assert not cache.put_at_epoch(key, "stale", epoch)
        assert cache.get(key) == "fresh"

    def test_put_if_predicate_runs_under_the_stripe_lock(self):
        cache = StripedCache(MAXSIZE, stripes=STRIPES)
        key = KEYS[0]
        entered = threading.Event()
        release = threading.Event()
        outcome = {}

        def gate():
            entered.set()
            release.wait(5)
            return True

        def writer():
            outcome["stored"] = cache.put_if(key, "guarded", gate)

        thread = threading.Thread(target=writer)
        thread.start()
        assert entered.wait(5)
        # While the predicate is parked inside put_if, the stripe lock is
        # held: a sweep of that stripe must block until the put completes.
        sweep = threading.Thread(
            target=lambda: cache.evict_where(lambda _k, _v: True)
        )
        sweep.start()
        sweep.join(0.1)
        assert sweep.is_alive()
        release.set()
        thread.join(5)
        sweep.join(5)
        assert outcome["stored"]
        assert key not in cache  # the sweep ran after the guarded put

    def test_scan_orders_most_recent_first_within_stripe(self):
        cache = StripedCache(MAXSIZE, stripes=STRIPES)
        ordered = []
        for key in KEYS:
            cache.put(key, key.upper())
            ordered.append(key)
        seen = [key for key, _value in cache.scan()]
        assert sorted(seen) == sorted(ordered)
        by_stripe: dict[int, list[str]] = {}
        for key in seen:
            by_stripe.setdefault(cache.stripe_of(key), []).append(key)
        for stripe, keys in by_stripe.items():
            expected = [k for k in reversed(ordered) if cache.stripe_of(k) == stripe]
            assert keys == expected

    def test_stats_exposes_stripe_breakdown(self):
        cache = StripedCache(MAXSIZE, stripes=STRIPES, name=None)
        for key in KEYS:
            cache.put(key, 0)
        stats = cache.stats()
        assert stats["size"] == len(KEYS)
        assert stats["stripes"] == STRIPES
        assert sum(stats["stripe_sizes"]) == len(KEYS)
        assert len(stats["stripe_epochs"]) == STRIPES


class TestEngineSurgicalEviction:
    """engine.evict(region=) drops exactly the contained entries per stripe."""

    def test_evict_region_across_striped_caches(self):
        import numpy as np

        from repro.core.records import Dataset
        from repro.serve.engine import ServeEngine

        rng = np.random.default_rng(7)
        data = Dataset(rng.uniform(0.0, 10.0, size=(120, 3)))
        engine = ServeEngine(data, cache_size=64, stripes=STRIPES)
        try:
            inner = hyperrectangle([0.15, 0.15], [0.25, 0.25])
            outer = hyperrectangle([0.45, 0.25], [0.55, 0.35])
            engine.utk1(inner, 2)
            engine.utk1(outer, 2)
            umbrella = hyperrectangle([0.10, 0.10], [0.30, 0.30])
            counts = engine.evict(region=umbrella)
            assert counts["utk1"] == 1
            assert counts["skyband"] >= 1
            stats = engine.statistics()
            hits_before = stats["utk1"]["hits"]
            engine.utk1(outer, 2)  # untouched entry is still warm
            assert engine.statistics()["utk1"]["hits"] == hits_before + 1
            misses_before = engine.statistics()["utk1"]["misses"]
            engine.utk1(inner, 2)  # evicted entry misses and recomputes
            assert engine.statistics()["utk1"]["misses"] == misses_before + 1
        finally:
            engine.close()
