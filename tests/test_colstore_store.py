"""ColumnarRecordStore: RecordStore semantics over memory-mapped files.

The headline property — checked with hypothesis across interleaved
insert/extend/delete/query streams — is indistinguishability: a colstore and
the in-memory :class:`RecordStore` fed the same operations expose identical
ids, matrices, liveness and snapshots at every step.  The rest covers what
only a file-backed store has: persistence across re-open, read-only
attachment, generation retirement, and manifest schema validation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.colstore import (
    PARQUET_AVAILABLE,
    ColumnarRecordStore,
    attach_columns,
    read_manifest,
)
from repro.colstore.store import write_manifest
from repro.dynamic.store import RecordStore
from repro.exceptions import InvalidDatasetError, StorageError

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def small_values(n=6, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d))


class TestRecordStoreContract:
    def test_matches_in_memory_store_on_basics(self, tmp_path):
        values = small_values()
        reference = RecordStore(values)
        store = ColumnarRecordStore(values, directory=tmp_path)
        assert store.dimensionality == reference.dimensionality
        assert len(store) == len(reference)
        np.testing.assert_array_equal(store.matrix, reference.matrix)
        new_id = store.insert([0.5, 0.6, 0.7])
        assert new_id == reference.insert([0.5, 0.6, 0.7])
        np.testing.assert_array_equal(
            store.delete(2), reference.delete(2)
        )
        np.testing.assert_array_equal(store.active_ids(), reference.active_ids())
        ids, snapshot = store.snapshot()
        ref_ids, ref_snapshot = reference.snapshot()
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(snapshot, ref_snapshot)

    def test_columns_are_contiguous_views(self, tmp_path):
        values = small_values()
        store = ColumnarRecordStore(values, directory=tmp_path)
        for axis in range(3):
            column = store.column(axis)
            assert column.flags["C_CONTIGUOUS"]
            np.testing.assert_array_equal(column, values[:, axis])
        with pytest.raises(IndexError):
            store.column(3)

    def test_growth_bumps_generation_and_retires_files(self, tmp_path):
        store = ColumnarRecordStore(small_values(4), directory=tmp_path, capacity=4)
        assert store.generation == 0
        store.extend(small_values(30, seed=1))  # outgrows MIN_CAPACITY
        assert store.generation >= 1
        binaries = sorted(p.name for p in tmp_path.glob("*.bin"))
        assert binaries == [
            f"active.g{store.generation}.bin",
            f"columns.g{store.generation}.bin",
        ]

    def test_rejects_bad_rows(self, tmp_path):
        store = ColumnarRecordStore(small_values(), directory=tmp_path)
        with pytest.raises(InvalidDatasetError):
            store.insert([0.1, 0.2])
        with pytest.raises(InvalidDatasetError):
            store.extend(np.full((2, 3), np.nan))


class TestPersistence:
    def test_round_trips_through_close_and_open(self, tmp_path):
        values = small_values(8)
        store = ColumnarRecordStore(values, directory=tmp_path)
        store.delete(3)
        inserted = store.insert([0.9, 0.8, 0.7])
        store.close()

        reopened = ColumnarRecordStore.open(tmp_path)
        assert reopened.high_water == 9
        assert len(reopened) == 8
        assert not reopened.is_active(3)
        np.testing.assert_array_equal(reopened.row(inserted), [0.9, 0.8, 0.7])
        np.testing.assert_array_equal(reopened.matrix[:8], values)
        reopened.insert([0.1, 0.2, 0.3])  # still writable
        reopened.close()

    def test_read_only_mode_blocks_mutation(self, tmp_path):
        ColumnarRecordStore(small_values(), directory=tmp_path).close()
        store = ColumnarRecordStore.open(tmp_path, mode="r")
        np.testing.assert_array_equal(store.matrix, small_values())
        for mutate in (
            lambda: store.insert([0.1, 0.2, 0.3]),
            lambda: store.extend(small_values(2)),
            lambda: store.delete(0),
        ):
            with pytest.raises(StorageError, match="read-only"):
                mutate()

    def test_from_chunks_equals_concatenation(self, tmp_path):
        chunks = [small_values(5, seed=s) for s in range(4)]
        store = ColumnarRecordStore.from_chunks(iter(chunks), tmp_path / "s")
        np.testing.assert_array_equal(store.matrix, np.concatenate(chunks))
        assert len(store) == 20

    def test_from_chunks_rejects_empty_iterator(self, tmp_path):
        with pytest.raises(StorageError, match="at least one chunk"):
            ColumnarRecordStore.from_chunks(iter([]), tmp_path / "s")

    def test_manifest_schema_is_validated(self, tmp_path):
        store = ColumnarRecordStore(small_values(), directory=tmp_path)
        store.close()
        manifest = read_manifest(tmp_path)
        manifest["schema"] = 99
        write_manifest(tmp_path, manifest)
        with pytest.raises(StorageError, match="schema"):
            ColumnarRecordStore.open(tmp_path)

    def test_non_colstore_directory_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="manifest"):
            ColumnarRecordStore.open(tmp_path)


class TestWorkerAttachment:
    def test_attach_columns_maps_read_only(self, tmp_path):
        values = small_values()
        store = ColumnarRecordStore(values, directory=tmp_path)
        attached = attach_columns(store.mmap_location(), store.high_water)
        np.testing.assert_array_equal(attached, values)
        with pytest.raises(ValueError):
            attached[0, 0] = 1.0  # read-only mapping

    def test_stale_descriptor_raises_file_not_found(self, tmp_path):
        store = ColumnarRecordStore(small_values(4), directory=tmp_path, capacity=4)
        stale = store.mmap_location()
        store.extend(small_values(30, seed=1))  # grows, retires generation 0
        with pytest.raises(FileNotFoundError):
            attach_columns(stale, 4)


class TestInterleavedEquivalence:
    """Hypothesis: op-stream indistinguishability from the in-memory store."""

    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "extend", "delete"]),
                      st.integers(0, 10_000)),
            min_size=1, max_size=30,
        ),
    )
    def test_matches_in_memory_store(self, tmp_path_factory, seed, ops):
        rng = np.random.default_rng(seed)
        values = rng.random((4, 3))
        directory = tmp_path_factory.mktemp("colstore")
        reference = RecordStore(values)
        store = ColumnarRecordStore(values, directory=directory, capacity=4)
        try:
            for op, draw in ops:
                if op == "insert":
                    row = np.random.default_rng(draw).random(3)
                    assert store.insert(row) == reference.insert(row)
                elif op == "extend":
                    rows = np.random.default_rng(draw).random((1 + draw % 5, 3))
                    np.testing.assert_array_equal(
                        store.extend(rows), reference.extend(rows)
                    )
                else:
                    active = reference.active_ids()
                    if active.size == 0:
                        continue
                    victim = int(active[draw % active.size])
                    np.testing.assert_array_equal(
                        store.delete(victim), reference.delete(victim)
                    )
                # Every intermediate state must be indistinguishable.
                assert len(store) == len(reference)
                assert store.high_water == reference.high_water
                np.testing.assert_array_equal(store.matrix, reference.matrix)
                np.testing.assert_array_equal(
                    store.active_mask(), reference.active_mask()
                )
        finally:
            store.close()


class TestParquet:
    @pytest.mark.skipif(not PARQUET_AVAILABLE, reason="pyarrow not installed")
    def test_round_trip(self, tmp_path):
        from repro.colstore import export_parquet, import_parquet

        values = small_values(10)
        store = ColumnarRecordStore(values, directory=tmp_path / "a")
        store.delete(4)
        export_parquet(store, tmp_path / "dump.parquet")
        restored = import_parquet(tmp_path / "dump.parquet", tmp_path / "b")
        ids, snapshot = store.snapshot()
        np.testing.assert_array_equal(restored.matrix, snapshot)

    @pytest.mark.skipif(PARQUET_AVAILABLE, reason="pyarrow installed")
    def test_missing_pyarrow_names_the_extra(self, tmp_path):
        from repro.colstore import export_parquet

        store = ColumnarRecordStore(small_values(), directory=tmp_path)
        with pytest.raises(StorageError, match=r"\[parquet\]"):
            export_parquet(store, tmp_path / "dump.parquet")
