"""Unit tests for the drill optimization helpers."""

import numpy as np
import pytest

from repro.core.cell import Cell
from repro.core.drill import drill_vector, is_in_top_k, kth_ranked, rank_of, top_k_positions
from repro.core.preference import scores
from repro.core.region import hyperrectangle


@pytest.fixture
def region():
    return hyperrectangle([0.1, 0.1], [0.4, 0.3])


class TestDrillVector:
    def test_inside_cell(self, region):
        cell = Cell(region)
        rng = np.random.default_rng(0)
        for _ in range(10):
            record = rng.random(3) * 10
            probe = drill_vector(cell, record)
            assert cell.contains(probe, tol=1e-7)

    def test_maximizes_candidate_score(self, region):
        cell = Cell(region)
        record = np.array([9.0, 1.0, 2.0])
        probe = drill_vector(cell, record)
        rng = np.random.default_rng(1)
        best = scores(record.reshape(1, -1), probe)[0]
        for point in region.sample(200, rng):
            assert best >= scores(record.reshape(1, -1), point)[0] - 1e-9

    def test_empty_cell_returns_none(self, region):
        from repro.core.halfspace import HalfSpace
        cell = Cell(region).restricted(HalfSpace(np.array([1.0, 0.0]), 0.9), True)
        assert drill_vector(cell, np.array([1.0, 1.0, 1.0])) is None


class TestRanking:
    def test_rank_of_matches_sorting(self):
        rng = np.random.default_rng(2)
        values = rng.random((30, 3)) * 10
        weights = np.array([0.2, 0.3])
        ranked = np.argsort(-scores(values, weights))
        for position, index in enumerate(ranked, start=1):
            assert rank_of(values, weights, int(index)) == position

    def test_ties_count_against_the_target(self):
        values = np.array([[5.0, 5.0], [5.0, 5.0], [1.0, 1.0]])
        # Both tied records see the other as ranked at least as high.
        assert rank_of(values, np.array([0.4]), 0) == 2
        assert rank_of(values, np.array([0.4]), 1) == 2

    def test_is_in_top_k(self):
        values = np.array([[9.0, 1.0], [1.0, 9.0], [5.0, 5.0]])
        weights = np.array([0.9])
        assert is_in_top_k(values, weights, 0, 1)
        assert not is_in_top_k(values, weights, 1, 2)
        assert is_in_top_k(values, weights, 2, 2)

    def test_kth_ranked(self):
        values = np.array([[9.0, 1.0], [1.0, 9.0], [5.0, 5.0]])
        weights = np.array([0.9])
        assert kth_ranked(values, weights, 1) == 0
        assert kth_ranked(values, weights, 2) == 2
        assert kth_ranked(values, weights, 3) == 1

    def test_kth_ranked_caps_at_dataset_size(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert kth_ranked(values, np.array([0.5]), 10) == 0  # lowest-ranked record

    def test_top_k_positions(self):
        values = np.array([[9.0, 1.0], [1.0, 9.0], [5.0, 5.0]])
        assert top_k_positions(values, np.array([0.9]), 2) == [0, 2]
