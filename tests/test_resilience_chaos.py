"""Crash the real server and prove nothing durable is lost.

These tests run actual ``python -m repro serve`` subprocesses through
:class:`~repro.resilience.chaos.ServerProcess`: the SIGKILL is a real
``SIGKILL`` (no finalizers, no flushes), the restart a real recovery from
the surviving WAL directory.  The regression at the core: a killed server,
restarted on the same WAL, must answer exactly like a serial engine that
applied the same updates without interruption — and must have cleaned up
the ``/dev/shm`` segments its predecessor leaked.
"""

from __future__ import annotations

import pytest

from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.dynamic.engine import DynamicUTKEngine
from repro.resilience.chaos import ServerProcess, run_chaos, shm_leftovers
from repro.resilience.recovery import read_shm_manifest
from repro.resilience.retry import CHAOS_RETRY
from repro.serve.client import ServeClient

_DATASET = {"dataset": "IND", "cardinality": 60, "dimensionality": 3, "seed": 5}

_UPDATES = [
    {"op": "insert", "values": [9.0, 9.0, 9.0]},
    {"op": "delete", "id": 3},
    {"op": "insert", "values": [0.5, 8.5, 4.0]},
    {"op": "delete", "id": 60},
]


@pytest.fixture
def data():
    return synthetic_dataset("IND", 60, 3, seed=5)


def _segment_exists(name: str) -> bool:
    from repro.serve.shm import _attach_untracked

    try:
        segment = _attach_untracked(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


class TestSigkillRecovery:
    def test_killed_server_restarts_to_the_exact_acked_prefix(self, tmp_path,
                                                              data):
        server = ServerProcess(workdir=tmp_path, **_DATASET)
        try:
            host, port = server.start()
            with ServeClient(host, port, retry=CHAOS_RETRY) as client:
                for event in _UPDATES:
                    client.send_event(event)
            orphans = read_shm_manifest(server.wal_dir)
            assert orphans

            server.sigkill()  # no finalizers: the segments leak ...
            assert any(_segment_exists(name) for name in orphans)

            host, port = server.start()  # ... until recovery cleans them up
            assert not any(_segment_exists(name) for name in orphans)
            with ServeClient(host, port, retry=CHAOS_RETRY) as client:
                stats = client.stats()
                assert stats["server"]["recovered"] == len(_UPDATES)
                assert stats["server"]["updates_finished"] == len(_UPDATES)
                answer = client.query([0.1, 0.1], [0.4, 0.4], 2)
                assert answer["seq"]["lo"] == len(_UPDATES)

            serial = DynamicUTKEngine(data)
            try:
                serial.apply_updates(_UPDATES)
                region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
                expected = sorted(int(i) for i in serial.utk1(region, 2).indices)
            finally:
                serial.close()
            assert answer["utk1"]["records"] == expected

            assert server.terminate() == 0
        finally:
            server.ensure_stopped()
        assert shm_leftovers(server.wal_dir) == []

    def test_update_acked_by_retry_counts_once_across_the_crash(self, tmp_path):
        """A txid WAL'd pre-crash must dedup, not double-apply, post-crash."""
        server = ServerProcess(workdir=tmp_path, **_DATASET)
        try:
            host, port = server.start()
            with ServeClient(host, port, retry=CHAOS_RETRY) as client:
                first = client.request({
                    "op": "insert", "values": [7.0, 7.0, 7.0], "txid": "tx-crash",
                })
            server.sigkill()
            host, port = server.start()
            with ServeClient(host, port, retry=CHAOS_RETRY) as client:
                # The client never saw a crash: re-sending the same txid
                # acks the original application at its original position.
                again = client.request({
                    "op": "insert", "values": [7.0, 7.0, 7.0], "txid": "tx-crash",
                })
                assert again["applied"] == first["applied"] == 1
                assert again["deduplicated"] is True
                assert client.stats()["server"]["updates_finished"] == 1
            assert server.terminate() == 0
        finally:
            server.ensure_stopped()


class TestChaosSoak:
    """Small in-suite chaos soaks; the CI lane runs the larger schedules."""

    def _events(self, data, count, seed):
        return update_stream(
            data, count, insert_prob=0.2, delete_prob=0.15,
            k_choices=(2, 3), sigma=0.08, hot_regions=3, hot_prob=0.7,
            seed=seed,
        )

    def test_conn_drop_schedule_is_invisible_to_the_oracle(self, tmp_path,
                                                           data):
        report = run_chaos(
            data, self._events(data, 40, seed=11),
            schedule="conn-drop", seed=7, workdir=tmp_path,
            server_args=_DATASET, clients=2, timeout=120.0,
        )
        assert report["ok"], (report["errors"], report["stale_details"])
        assert report["stale"] == 0
        assert report["faults"]  # the schedule actually fired
        assert report["client_retries"] >= 1
        assert report["server_exit"] == 0
        assert report["shm_leaked"] == []

    def test_server_crash_schedule_recovers_and_stays_linearizable(
            self, tmp_path, data):
        report = run_chaos(
            data, self._events(data, 40, seed=13),
            schedule="server-crash", seed=3, workdir=tmp_path,
            server_args=_DATASET, clients=2, timeout=180.0,
        )
        assert report["ok"], (report["errors"], report["stale_details"])
        assert report["stale"] == 0
        assert report["server_starts"] == 2  # the crash really restarted it
        assert report["recovered"] > 0  # ... replaying a non-empty WAL
        assert any(f["kind"] == "crash_server" for f in report["faults"])
        assert report["server_exit"] == 0
        assert report["shm_leaked"] == []
