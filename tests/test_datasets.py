"""Tests for the synthetic and simulated-real dataset generators."""

import numpy as np
import pytest

from repro.core.records import Dataset
from repro.datasets.nba import NBA_STAR_COLUMNS, NBA_STARS, nba_star_dataset
from repro.datasets.real import (
    DEFAULT_CARDINALITIES,
    PAPER_SHAPES,
    hotel_dataset,
    house_dataset,
    nba_league_dataset,
    real_dataset,
)
from repro.datasets.synthetic import (
    DISTRIBUTIONS,
    anticorrelated,
    clustered,
    correlated,
    independent,
    synthetic_dataset,
)
from repro.exceptions import InvalidDatasetError
from repro.skyline.dominance import skyline_bruteforce


class TestSyntheticGenerators:
    def test_shapes_and_ranges(self):
        for generator in (independent, correlated, anticorrelated, clustered):
            values = generator(500, 4, seed=0)
            assert values.shape == (500, 4)
            assert values.min() >= 0.0 and values.max() <= 1.0

    def test_reproducible_with_seed(self):
        assert np.allclose(independent(100, 3, seed=5), independent(100, 3, seed=5))
        assert not np.allclose(independent(100, 3, seed=5), independent(100, 3, seed=6))

    def test_correlation_structure(self):
        cor = np.corrcoef(correlated(4000, 3, seed=1), rowvar=False)
        anti = np.corrcoef(anticorrelated(4000, 3, seed=1), rowvar=False)
        off_cor = cor[np.triu_indices(3, 1)]
        off_anti = anti[np.triu_indices(3, 1)]
        assert off_cor.mean() > 0.3
        assert off_anti.mean() < -0.1

    def test_skyline_size_ordering(self):
        """ANTI has the largest skyline, COR the smallest (paper's rationale)."""
        sizes = {}
        for name in ("COR", "IND", "ANTI"):
            data = synthetic_dataset(name, 2000, 3, seed=2)
            sizes[name] = skyline_bruteforce(data.values).size
        assert sizes["COR"] < sizes["IND"] < sizes["ANTI"]

    def test_clustered_has_blob_structure(self):
        """Points sit near one of the requested centres, not uniformly."""
        values = clustered(3000, 3, seed=4, clusters=4, spread=0.03)
        # Nearest-centre distances recovered from the generator's own seed
        # would be circular; instead check concentration: with 4 tight blobs
        # the per-coordinate histogram is far from uniform (IND is not).
        ind = independent(3000, 3, seed=4)
        clus_spread = np.histogram(values[:, 0], bins=20, range=(0, 1))[0].std()
        ind_spread = np.histogram(ind[:, 0], bins=20, range=(0, 1))[0].std()
        assert clus_spread > 3 * ind_spread

    def test_clustered_skyband_between_cor_and_anti(self):
        sizes = {
            name: skyline_bruteforce(synthetic_dataset(name, 2000, 3, seed=2).values).size
            for name in ("COR", "CLUS", "ANTI")
        }
        assert sizes["COR"] <= sizes["CLUS"] <= sizes["ANTI"]

    def test_clustered_reproducible_and_distinct_seeds(self):
        assert np.allclose(clustered(200, 3, seed=9), clustered(200, 3, seed=9))
        assert not np.allclose(clustered(200, 3, seed=9), clustered(200, 3, seed=10))

    def test_dispatch_by_name(self):
        data = synthetic_dataset("ind", 50, 3, seed=0)
        assert isinstance(data, Dataset)
        assert "CLUS" in DISTRIBUTIONS
        assert isinstance(synthetic_dataset("clus", 50, 3, seed=0), Dataset)
        with pytest.raises(InvalidDatasetError):
            synthetic_dataset("WEIRD", 50, 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidDatasetError):
            independent(0, 3)
        with pytest.raises(InvalidDatasetError):
            correlated(10, 1)
        with pytest.raises(InvalidDatasetError):
            anticorrelated(-5, 3)
        with pytest.raises(InvalidDatasetError):
            clustered(10, 3, clusters=0)


class TestRealSubstitutes:
    def test_dimensionalities_match_paper(self):
        assert hotel_dataset(200).dimensionality == PAPER_SHAPES["HOTEL"][1]
        assert house_dataset(200).dimensionality == PAPER_SHAPES["HOUSE"][1]
        assert nba_league_dataset(200).dimensionality == PAPER_SHAPES["NBA"][1]

    def test_default_cardinalities(self):
        assert len(hotel_dataset()) == DEFAULT_CARDINALITIES["HOTEL"]

    def test_values_non_negative_and_bounded(self):
        for dataset in (hotel_dataset(300), house_dataset(300), nba_league_dataset(300)):
            assert dataset.values.min() >= 0.0
            assert dataset.values.max() <= 10.0 + 1e-9

    def test_reproducible(self):
        assert np.allclose(hotel_dataset(100, seed=3).values, hotel_dataset(100, seed=3).values)

    def test_hotel_ratings_positively_correlated(self):
        values = hotel_dataset(4000, seed=0).values
        corr = np.corrcoef(values[:, :3], rowvar=False)
        assert corr[np.triu_indices(3, 1)].mean() > 0.2

    def test_nba_league_positively_correlated(self):
        values = nba_league_dataset(4000, seed=0).values
        corr = np.corrcoef(values, rowvar=False)
        assert corr[np.triu_indices(8, 1)].mean() > 0.2

    def test_dispatch(self):
        assert real_dataset("hotel", 100).dimensionality == 4
        with pytest.raises(InvalidDatasetError):
            real_dataset("unknown")

    def test_rejects_bad_cardinality(self):
        with pytest.raises(InvalidDatasetError):
            hotel_dataset(0)


class TestNBAStars:
    def test_all_columns_available(self):
        data = nba_star_dataset(NBA_STAR_COLUMNS)
        assert data.dimensionality == len(NBA_STAR_COLUMNS)
        assert data.size == len(NBA_STARS)

    def test_column_selection_order(self):
        data = nba_star_dataset(("points", "rebounds"))
        westbrook = data.labels.index("Russell Westbrook")
        assert data.values[westbrook, 0] == pytest.approx(31.6)
        assert data.values[westbrook, 1] == pytest.approx(10.7)

    def test_westbrook_leads_scoring(self):
        data = nba_star_dataset(("points", "rebounds"))
        top_scorer = data.label_of(int(np.argmax(data.values[:, 0])))
        assert top_scorer == "Russell Westbrook"

    def test_whiteside_leads_rebounding(self):
        data = nba_star_dataset(("rebounds", "points"))
        top_rebounder = data.label_of(int(np.argmax(data.values[:, 0])))
        assert top_rebounder == "Hassan Whiteside"

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            nba_star_dataset(("rebounds", "threes"))
