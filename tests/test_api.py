"""Tests for the public convenience API (repro.core.api / package root)."""

import numpy as np
import pytest

import repro
from repro import Dataset, PowerScoring, hyperrectangle, utk1, utk2, utk_query
from repro.core.preference import scores


@pytest.fixture
def data(rng):
    return Dataset(rng.random((120, 3)) * 10)


@pytest.fixture
def region():
    return hyperrectangle([0.1, 0.1], [0.4, 0.3])


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestUTK1API:
    def test_accepts_dataset_and_matrix(self, data, region):
        via_dataset = utk1(data, region, 3)
        via_matrix = utk1(data.values, region, 3)
        assert via_dataset.indices == via_matrix.indices

    def test_records_k_and_region(self, data, region):
        result = utk1(data, region, 3)
        assert result.k == 3
        assert result.region is region

    def test_scoring_function_applied(self, data, region):
        linear = utk1(data, region, 3)
        quadratic = utk1(data, region, 3, scoring=PowerScoring(2.0))
        # The transformed problem is a genuine UTK problem on squared values.
        manual = utk1(data.values ** 2, region, 3)
        assert quadratic.indices == manual.indices
        assert isinstance(linear.indices, list)

    def test_drill_flag_propagates(self, data, region):
        with_drill = utk1(data, region, 2, use_drill=True)
        without_drill = utk1(data, region, 2, use_drill=False)
        assert with_drill.indices == without_drill.indices


class TestUTK2API:
    def test_partitioning_covers_region(self, data, region, rng):
        result = utk2(data, region, 2)
        for weights in region.sample(100, rng):
            expected = np.argsort(-scores(data.values, weights))[:2]
            assert result.top_k_at(weights) == frozenset(int(i) for i in expected)

    def test_scoring_function_applied(self, data, region):
        transformed = utk2(data, region, 2, scoring=PowerScoring(2.0))
        manual = utk2(data.values ** 2, region, 2)
        assert transformed.distinct_top_k_sets == manual.distinct_top_k_sets


class TestCombinedQuery:
    def test_utk_query_consistency(self, data, region):
        first, second = utk_query(data, region, 3)
        assert set(second.result_records) == set(first.indices)

    def test_utk_query_matches_individual_calls(self, data, region):
        first, second = utk_query(data, region, 2)
        assert first.indices == utk1(data, region, 2).indices
        assert second.distinct_top_k_sets == utk2(data, region, 2).distinct_top_k_sets
