"""Tests for the constrained monochromatic reverse top-k (kSPR) building block."""

import numpy as np
import pytest

from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.exceptions import InvalidQueryError
from repro.queries.kspr import constrained_reverse_topk
from repro.skyline.dominance import k_skyband_bruteforce

from helpers import brute_force_top_k


@pytest.fixture
def region():
    return hyperrectangle([0.1, 0.1], [0.4, 0.3])


class TestQualification:
    def test_agrees_with_rsa_membership(self, region):
        rng = np.random.default_rng(0)
        values = rng.random((80, 3)) * 10
        k = 3
        utk = set(RSA(values, region, k).run().indices)
        candidates = k_skyband_bruteforce(values, k).tolist()
        for candidate in candidates:
            outcome = constrained_reverse_topk(values, candidate, region, k, competitors=candidates)
            assert outcome.qualifies == (candidate in utk)

    def test_qualifying_cells_are_genuine(self, region):
        rng = np.random.default_rng(1)
        values = rng.random((60, 3)) * 10
        k = 2
        candidates = k_skyband_bruteforce(values, k).tolist()
        for candidate in candidates[:8]:
            outcome = constrained_reverse_topk(values, candidate, region, k, competitors=candidates)
            for leaf in outcome.cells:
                probe = leaf.cell.interior_point
                assert probe is not None
                assert candidate in brute_force_top_k(values, probe, k)

    def test_witness_in_region(self, region):
        rng = np.random.default_rng(2)
        values = rng.random((50, 3)) * 10
        k = 2
        candidates = k_skyband_bruteforce(values, k).tolist()
        qualified = [c for c in candidates
                     if constrained_reverse_topk(values, c, region, k,
                                                 competitors=candidates).qualifies]
        assert qualified
        outcome = constrained_reverse_topk(values, qualified[0], region, k, competitors=candidates)
        assert region.contains(outcome.witness(), tol=1e-7)

    def test_default_competitors_whole_dataset(self, region):
        rng = np.random.default_rng(3)
        values = rng.random((30, 3)) * 10
        k = 2
        utk = set(RSA(values, region, k).run().indices)
        for candidate in range(values.shape[0]):
            outcome = constrained_reverse_topk(values, candidate, region, k)
            assert outcome.qualifies == (candidate in utk)


class TestEarlyTermination:
    def test_same_qualification_decision(self, region):
        rng = np.random.default_rng(4)
        values = rng.random((60, 3)) * 10
        k = 2
        candidates = k_skyband_bruteforce(values, k).tolist()
        for candidate in candidates:
            full = constrained_reverse_topk(values, candidate, region, k, competitors=candidates)
            early = constrained_reverse_topk(
                values, candidate, region, k, competitors=candidates, early_terminate=True
            )
            assert full.qualifies == early.qualifies

    def test_counts_work_performed(self, region):
        values = np.random.default_rng(5).random((40, 3)) * 10
        outcome = constrained_reverse_topk(values, 0, region, 2)
        assert outcome.halfspaces_inserted == values.shape[0] - 1
        assert outcome.leaves_examined >= 1


class TestValidation:
    def test_rejects_bad_focal(self, region):
        with pytest.raises(InvalidQueryError):
            constrained_reverse_topk(np.zeros((5, 3)), 9, region, 1)

    def test_rejects_bad_k(self, region):
        with pytest.raises(InvalidQueryError):
            constrained_reverse_topk(np.zeros((5, 3)), 0, region, 0)
