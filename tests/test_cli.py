"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestQueryCommand:
    def test_text_output(self, capsys):
        code = main(["query", "--dataset", "IND", "--cardinality", "200",
                     "--dimensionality", "3", "--k", "2",
                     "--lower", "0.1", "0.1", "--upper", "0.3", "0.3"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "UTK1" in captured and "UTK2" in captured

    def test_json_output_is_parseable(self, capsys):
        code = main(["query", "--dataset", "COR", "--cardinality", "150",
                     "--dimensionality", "3", "--k", "2",
                     "--lower", "0.1", "0.1", "--upper", "0.3", "0.3",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"] == "COR"
        assert set(payload["utk2"]) == {"partitions", "distinct_top_k_sets"}
        assert payload["utk1"]["records"]

    def test_utk1_only(self, capsys):
        code = main(["query", "--dataset", "IND", "--cardinality", "100",
                     "--dimensionality", "3", "--k", "1",
                     "--lower", "0.2", "0.2", "--upper", "0.3", "0.3",
                     "--version", "utk1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "utk1" in payload and "utk2" not in payload

    def test_real_dataset_by_name(self, capsys):
        code = main(["query", "--dataset", "HOTEL", "--cardinality", "300",
                     "--k", "2", "--lower", "0.1", "0.1", "0.1",
                     "--upper", "0.2", "0.2", "0.2", "--version", "utk1"])
        assert code == 0
        assert "UTK1" in capsys.readouterr().out

    def test_invalid_region_errors_out(self):
        with pytest.raises(Exception):
            main(["query", "--dataset", "IND", "--cardinality", "50",
                  "--dimensionality", "3", "--k", "1",
                  "--lower", "0.9", "0.9", "--upper", "0.95", "0.95"])


class TestBatchCommand:
    def _write_queries(self, path):
        lines = [
            {"lower": [0.1, 0.1], "upper": [0.35, 0.3], "k": 2, "version": "both"},
            {"lower": [0.15, 0.12], "upper": [0.3, 0.22], "k": 2, "version": "utk2"},
            {"lower": [0.15, 0.12], "upper": [0.3, 0.22], "k": 2, "version": "utk2"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")

    def test_batch_report(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        self._write_queries(queries)
        code = main(["batch", "--input", str(queries), "--dataset", "IND",
                     "--cardinality", "150", "--workers", "1"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 3
        assert report["sources"].get("hit") == 1
        assert report["sources"].get("containment") == 2
        assert report["sources"].get("cold") == 1
        assert set(report["cache"]) == {"engine", "skyband", "utk1", "utk2", "k_skyband"}
        assert report["results"][0]["utk1"]["records"]
        assert report["results"][1]["utk2"]["partitions"] >= 1

    def test_batch_output_file(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        self._write_queries(queries)
        out = tmp_path / "report.json"
        code = main(
            ["batch", "--input", str(queries), "--cardinality", "120", "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["queries"] == 3

    def test_batch_empty_input_fails(self, tmp_path):
        queries = tmp_path / "empty.jsonl"
        queries.write_text("")
        assert main(["batch", "--input", str(queries)]) == 1

    def test_batch_malformed_line_rejected(self, tmp_path):
        queries = tmp_path / "bad.jsonl"
        queries.write_text('{"lower": [0.1, 0.1], "k": 2}\n')
        with pytest.raises(Exception):
            main(["batch", "--input", str(queries), "--cardinality", "100"])


class TestStreamCommand:
    def _write_events(self, path):
        lines = [
            {"op": "query", "lower": [0.1, 0.1], "upper": [0.3, 0.3], "k": 2,
             "version": "both"},
            {"op": "insert", "values": [0.9, 0.9, 0.9]},
            {"op": "query", "lower": [0.1, 0.1], "upper": [0.3, 0.3], "k": 2},
            {"op": "delete", "id": 0},
            {"op": "query", "lower": [0.1, 0.1], "upper": [0.3, 0.3], "k": 2,
             "version": "utk2"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")

    def test_stream_report(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        self._write_events(events)
        code = main(["stream", "--input", str(events), "--dataset", "IND",
                     "--cardinality", "150", "--dimensionality", "3"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] == 5
        assert report["queries"] == 3 and report["updates"] == 2
        assert report["n_initial"] == 150 and report["n_final"] == 150
        assert report["dynamic"]["updates_applied"] == 2
        assert "dynamic" not in report["cache"]  # counters appear exactly once
        query_records = [item for item in report["results"] if item["op"] == "query"]
        assert len(query_records) == 3
        assert "utk1" in query_records[0] and "utk2" in query_records[0]
        insert_record = next(item for item in report["results"] if item["op"] == "insert")
        assert insert_record["id"] == 150  # fresh stable id after the initial 0..149

    def test_stream_output_file(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        self._write_events(events)
        out = tmp_path / "report.json"
        code = main(["stream", "--input", str(events), "--cardinality", "120",
                     "--output", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["events"] == 5
        assert capsys.readouterr().out == ""

    def test_stream_empty_input_fails(self, tmp_path):
        events = tmp_path / "empty.jsonl"
        events.write_text("\n")
        assert main(["stream", "--input", str(events)]) == 1

    def test_stream_malformed_line_rejected(self, tmp_path):
        events = tmp_path / "bad.jsonl"
        events.write_text('{"lower": [0.1, 0.1]}\n')
        with pytest.raises(Exception):
            main(["stream", "--input", str(events), "--cardinality", "50"])


class TestExperimentCommand:
    def test_table1(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        assert "parameter" in capsys.readouterr().out

    def test_tiny_fig14(self, capsys):
        scale = json.dumps({"cardinality": 200, "dimensionality": 3, "k": 2,
                            "sigma_values": [0.02, 0.05], "queries": 1, "seed": 1})
        code = main(["experiment", "fig14", "--scale", scale])
        assert code == 0
        out = capsys.readouterr().out
        assert "rsa_seconds" in out

    def test_experiment_registry_complete(self):
        assert {"table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                "fig16", "ablation-rsa", "ablation-jaa"} == set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestMatrixCommand:
    def test_single_cell_smoke_json(self, tmp_path, capsys):
        code = main(["matrix", "--scenario", "cor-storm", "--backend", "serial",
                     "--smoke", "--output-dir", str(tmp_path), "--report", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["gates"]["oracle:cor-storm/serial"] is True
        [row] = payload["rows"]
        assert row["oracle"] == "ok" and row["backend"] == "serial"
        assert (tmp_path / "BENCH_matrix.json").exists()
        assert (tmp_path / "METRICS_matrix_cor-storm_serial.jsonl").exists()

    def test_markdown_report(self, tmp_path, capsys):
        code = main(["matrix", "--scenario", "cor-storm", "--backend", "serial",
                     "--smoke", "--no-oracle", "--output-dir", str(tmp_path),
                     "--report", "md"])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Scenario matrix" in out
        assert "| scenario | traffic | serial |" in out

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(Exception):
            main(["matrix", "--scenario", "no-such-scenario", "--smoke",
                  "--output-dir", str(tmp_path)])


class TestTrendCommand:
    def _write_matrix(self, path, qps):
        from repro.bench.reporting import write_bench_json

        rows = [{"scenario": "s", "backend": "b", "traffic": "cold", "queries": 4,
                 "seconds": 1.0, "qps": qps, "oracle": "ok", "gated": True}]
        write_bench_json(path, "matrix", rows,
                         gates={"oracle:s/b": True, "oracle_checked": True, "passed": True},
                         meta={"smoke": True})

    def test_identical_runs_pass(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        self._write_matrix(current, 100.0)
        code = main(["trend", "--current", str(current), "--baseline", str(current)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails_and_writes_output(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        summary = tmp_path / "summary.md"
        self._write_matrix(baseline, 100.0)
        self._write_matrix(current, 50.0)
        code = main(["trend", "--current", str(current), "--baseline", str(baseline),
                     "--report", "md", "--output", str(summary)])
        assert code == 1
        assert "regression" in capsys.readouterr().out
        assert "## Benchmark trend" in summary.read_text()

    def test_custom_threshold(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        self._write_matrix(baseline, 100.0)
        self._write_matrix(current, 50.0)
        code = main(["trend", "--current", str(current), "--baseline", str(baseline),
                     "--threshold", "0.6"])
        assert code == 0
