"""Unit tests for preference regions."""

import numpy as np
import pytest

from repro.core.region import (
    Region,
    hyperrectangle,
    region_from_vertices,
    simplex_region,
)
from repro.exceptions import InvalidRegionError


class TestHyperrectangle:
    def test_vertices_of_square(self):
        region = hyperrectangle([0.1, 0.2], [0.3, 0.4])
        assert region.vertices.shape == (4, 2)
        assert region.dimension == 2

    def test_pivot_is_centre(self):
        region = hyperrectangle([0.1, 0.2], [0.3, 0.4])
        assert np.allclose(region.pivot, [0.2, 0.3])

    def test_contains(self):
        region = hyperrectangle([0.1], [0.3])
        assert region.contains([0.2])
        assert region.contains([0.1])
        assert not region.contains([0.35])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidRegionError):
            hyperrectangle([0.3], [0.1])

    def test_rejects_mismatched_corners(self):
        with pytest.raises(InvalidRegionError):
            hyperrectangle([0.1, 0.2], [0.3])

    def test_rejects_region_outside_simplex(self):
        with pytest.raises(InvalidRegionError):
            hyperrectangle([0.7, 0.7], [0.9, 0.9])  # weight sum exceeds 1

    def test_rejects_negative_weights(self):
        with pytest.raises(InvalidRegionError):
            hyperrectangle([-0.2, 0.1], [0.3, 0.2])

    def test_validation_can_be_disabled(self):
        region = hyperrectangle([0.7, 0.7], [0.9, 0.9], validate=False)
        assert region.contains([0.8, 0.8])

    def test_linear_min_max(self):
        region = hyperrectangle([0.1, 0.2], [0.3, 0.5])
        coef = np.array([1.0, -1.0])
        assert region.linear_min(coef) == pytest.approx(0.1 - 0.5)
        assert region.linear_max(coef) == pytest.approx(0.3 - 0.2)

    def test_inradius_of_square(self):
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        assert region.inradius == pytest.approx(0.1, abs=1e-6)

    def test_sample_points_inside(self):
        region = hyperrectangle([0.05, 0.05], [0.45, 0.25])
        rng = np.random.default_rng(0)
        for point in region.sample(100, rng):
            assert region.contains(point, tol=1e-9)

    def test_sample_zero_count(self):
        region = hyperrectangle([0.1], [0.2])
        assert region.sample(0).shape == (0, 1)


class TestSimplexRegion:
    def test_full_domain(self):
        region = simplex_region(2)
        assert region.contains([0.0, 0.0])
        assert region.contains([1.0, 0.0])
        assert region.contains([0.3, 0.3])
        assert not region.contains([0.7, 0.7])

    def test_margin(self):
        region = simplex_region(2, margin=0.1)
        assert not region.contains([0.0, 0.0])
        assert region.contains([0.2, 0.2])

    def test_rejects_zero_dimension(self):
        with pytest.raises(InvalidRegionError):
            simplex_region(0)


class TestRegionFromVertices:
    def test_one_dimensional(self):
        region = region_from_vertices([[0.2], [0.6], [0.4]])
        assert region.contains([0.3])
        assert not region.contains([0.7])
        assert region.linear_max([1.0]) == pytest.approx(0.6)

    def test_triangle(self):
        region = region_from_vertices([[0.1, 0.1], [0.4, 0.1], [0.1, 0.4]])
        assert region.contains([0.2, 0.2])
        assert not region.contains([0.4, 0.4])

    def test_degenerate_vertices_raise(self):
        with pytest.raises(InvalidRegionError):
            region_from_vertices([[0.1, 0.1], [0.1, 0.1], [0.1, 0.1]])

    def test_needs_two_vertices(self):
        with pytest.raises(InvalidRegionError):
            region_from_vertices([[0.5, 0.5]])


class TestRegionGeneral:
    def test_empty_region_rejected(self):
        a = [[1.0], [-1.0]]
        b = [0.1, -0.2]  # u <= 0.1 and u >= 0.2
        with pytest.raises(InvalidRegionError):
            Region(a, b)

    def test_constraint_shape_mismatch(self):
        with pytest.raises(InvalidRegionError):
            Region([[1.0, 0.0]], [0.5, 0.3])

    def test_vertex_dimension_mismatch(self):
        with pytest.raises(InvalidRegionError):
            Region([[1.0], [-1.0]], [0.4, -0.1], vertices=[[0.1, 0.2]])

    def test_interior_point_inside(self):
        region = hyperrectangle([0.05, 0.05], [0.45, 0.25])
        assert region.contains(region.interior_point)

    def test_linear_min_without_vertices_uses_lp(self):
        a = np.vstack([np.eye(2), -np.eye(2)])
        b = np.array([0.4, 0.3, -0.1, -0.1])
        region = Region(a, b)  # no vertices supplied
        assert region.vertices is None
        assert region.linear_min([1.0, 0.0]) == pytest.approx(0.1, abs=1e-8)
        assert region.linear_max([1.0, 1.0]) == pytest.approx(0.7, abs=1e-8)

    def test_sample_without_vertices(self):
        a = np.vstack([np.eye(2), -np.eye(2)])
        b = np.array([0.4, 0.3, -0.1, -0.1])
        region = Region(a, b)
        rng = np.random.default_rng(1)
        for point in region.sample(50, rng):
            assert region.contains(point, tol=1e-9)
