"""Unit tests for the LP toolkit (repro.geometry.linear_programming)."""

import numpy as np
import pytest

from repro.exceptions import LinearProgramError
from repro.geometry.linear_programming import (
    chebyshev_center,
    feasible_point,
    has_interior,
    maximize,
    minimize,
)


class TestMinimizeMaximize:
    def test_minimize_unconstrained_zero_objective(self):
        result = minimize([0.0, 0.0])
        assert result.is_optimal

    def test_minimize_box_2d(self):
        # min x + y on the unit square -> 0 at the origin.
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 0, 1, 0]
        result = minimize([1.0, 1.0], a, b)
        assert result.is_optimal
        assert result.value == pytest.approx(0.0, abs=1e-9)

    def test_maximize_box_2d(self):
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 0, 1, 0]
        result = maximize([2.0, 3.0], a, b)
        assert result.value == pytest.approx(5.0, abs=1e-9)
        assert np.allclose(result.x, [1.0, 1.0], atol=1e-8)

    def test_infeasible_detected(self):
        a = [[1.0], [-1.0]]
        b = [0.0, -1.0]  # x <= 0 and x >= 1
        result = minimize([1.0], a, b)
        assert result.status == "infeasible"
        assert not result.is_optimal

    def test_unbounded_detected_1d(self):
        result = minimize([1.0], [[1.0]], [5.0])  # x <= 5, minimize x
        assert result.status == "unbounded"

    def test_unbounded_detected_multidim(self):
        result = minimize([1.0, 0.0], [[0.0, 1.0]], [1.0])
        assert result.status == "unbounded"

    def test_one_dimensional_fast_path_matches_general(self):
        a = [[2.0], [-3.0]]
        b = [4.0, 6.0]
        fast = maximize([1.0], a, b)
        assert fast.value == pytest.approx(2.0)
        fast_min = minimize([1.0], a, b)
        assert fast_min.value == pytest.approx(-2.0)

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(LinearProgramError):
            minimize([1.0, 1.0], [[1.0, 0.0]], [1.0, 2.0])

    def test_wrong_column_count_raises(self):
        with pytest.raises(LinearProgramError):
            minimize([1.0, 1.0], [[1.0, 0.0, 0.0]], [1.0])


class TestChebyshev:
    def test_unit_square_centre(self):
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 0, 1, 0]
        centre, radius = chebyshev_center(a, b)
        assert np.allclose(centre, [0.5, 0.5], atol=1e-7)
        assert radius == pytest.approx(0.5, abs=1e-7)

    def test_interval_centre_1d(self):
        centre, radius = chebyshev_center([[1.0], [-1.0]], [3.0, 1.0])
        assert centre[0] == pytest.approx(1.0)
        assert radius == pytest.approx(2.0)

    def test_empty_polytope(self):
        centre, radius = chebyshev_center([[1.0], [-1.0]], [0.0, -1.0])
        assert centre is None
        assert radius < 0.0

    def test_empty_polytope_2d(self):
        a = [[1, 0], [-1, 0]]
        b = [0.0, -1.0]
        centre, radius = chebyshev_center(a, b)
        assert centre is None

    def test_triangle_has_interior(self):
        a = [[-1, 0], [0, -1], [1, 1]]
        b = [0, 0, 1]
        assert has_interior(a, b)

    def test_degenerate_segment_has_no_interior(self):
        # x in [0,1], y in [0,0] — a segment in the plane.
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 0, 0, 0]
        assert not has_interior(a, b, tol=1e-9)

    def test_feasible_point_inside(self):
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [2, 0, 3, 0]
        point = feasible_point(a, b)
        assert point is not None
        assert np.all(np.asarray(a) @ point <= np.asarray(b) + 1e-9)

    def test_feasible_point_none_when_empty(self):
        assert feasible_point([[1.0], [-1.0]], [0.0, -1.0]) is None

    def test_requires_dimension_or_constraints(self):
        with pytest.raises(LinearProgramError):
            chebyshev_center(np.zeros((0, 0)), np.zeros(0))


class TestNumericalRobustness:
    def test_random_boxes_contain_their_centres(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            dim = int(rng.integers(1, 5))
            lo = rng.uniform(-1, 0, dim)
            hi = rng.uniform(0.1, 1.5, dim)
            a = np.vstack([np.eye(dim), -np.eye(dim)])
            b = np.concatenate([hi, -lo])
            centre, radius = chebyshev_center(a, b, dim=dim)
            assert np.all(a @ centre <= b + 1e-9)
            assert radius > 0.0

    def test_maximize_direction_hits_boundary(self):
        rng = np.random.default_rng(1)
        dim = 3
        a = np.vstack([np.eye(dim), -np.eye(dim)])
        b = np.concatenate([np.ones(dim), np.zeros(dim)])
        for _ in range(10):
            direction = rng.normal(size=dim)
            result = maximize(direction, a, b)
            expected = float(np.sum(np.maximum(direction, 0.0)))
            assert result.value == pytest.approx(expected, abs=1e-8)
