"""Colstore wired through the stack: api, serve tier, matrix, CLI.

Every integration point must preserve answers exactly: ``make_engine``'s
colstore backend (build and attach paths), the serve tier's mmap-file
descriptor protocol (including staleness after a growth retired the files),
the scenario-matrix colstore backend, and the ``repro build`` /
``repro inspect`` / ``repro query --store colstore`` commands.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.api import make_engine
from repro.core.region import hyperrectangle
from repro.core.scoring import PowerScoring
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import InvalidQueryError, StorageError
from repro.scenarios import BACKENDS, SCENARIOS
from repro.serve.engine import ServeEngine
from repro.serve.workers import reset_worker_state, worker_query


@pytest.fixture
def data():
    return synthetic_dataset("IND", 150, 3, seed=4)


def region():
    return hyperrectangle([0.1, 0.1], [0.3, 0.3])


class TestMakeEngine:
    def test_build_then_attach_matches_memory_backend(self, tmp_path, data):
        reference = make_engine(data)
        built = make_engine(data, store="colstore", store_dir=tmp_path)
        attached = make_engine(None, store="colstore", store_dir=tmp_path)
        for k in (2, 3):
            expected = sorted(map(int, reference.utk1(region(), k).indices))
            assert sorted(map(int, built.utk1(region(), k).indices)) == expected
            assert sorted(map(int, attached.utk1(region(), k).indices)) == expected
            want = sorted(sorted(map(int, s))
                          for s in reference.utk2(region(), k).distinct_top_k_sets)
            got = sorted(sorted(map(int, s))
                         for s in attached.utk2(region(), k).distinct_top_k_sets)
            assert got == want

    def test_materialized_files_are_on_disk(self, tmp_path, data):
        make_engine(data, store="colstore", store_dir=tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "rtree.pages").exists()

    def test_attach_without_store_dir_is_rejected(self):
        with pytest.raises(StorageError):
            make_engine(None, store="colstore", store_dir=None)

    def test_non_linear_scoring_is_rejected(self, tmp_path, data):
        with pytest.raises(InvalidQueryError, match="linear"):
            make_engine(data, store="colstore", store_dir=tmp_path,
                        scoring=PowerScoring(2.0))

    def test_unknown_store_is_rejected(self, data):
        with pytest.raises(InvalidQueryError, match="store"):
            make_engine(data, store="rocksdb")


class TestServeColstore:
    def test_worker_answers_match_engine(self, tmp_path, data):
        engine = ServeEngine(data, store_backend="colstore", store_dir=tmp_path)
        try:
            descriptor = engine.shared_descriptor()
            assert descriptor["kind"] == "colstore"
            assert engine.shm_segment_names() == []
            for k in (2, 3):
                answer = worker_query(descriptor, [0.1, 0.1], [0.3, 0.3], k, "both")
                assert not answer.get("stale")
                assert answer["utk1"] == sorted(
                    int(i) for i in engine.utk1(region(), k).indices
                )
                assert answer["utk2"] == sorted(
                    sorted(int(i) for i in s)
                    for s in engine.utk2(region(), k).distinct_top_k_sets
                )
        finally:
            reset_worker_state()
            engine.close()

    def test_descriptor_tracks_updates_and_goes_stale(self, tmp_path, data):
        engine = ServeEngine(data, store_backend="colstore", store_dir=tmp_path)
        try:
            before = engine.shared_descriptor()
            # Enough inserts to outgrow the initial capacity generation.
            engine.apply_updates([
                {"op": "insert", "values": list(row)}
                for row in np.random.default_rng(1).random((200, 3))
            ])
            after = engine.shared_descriptor()
            assert after["generation"] > before["generation"]
            assert after["buffer"]["columns_file"] != before["buffer"]["columns_file"]
            answer = worker_query(after, [0.1, 0.1], [0.3, 0.3], 2)
            assert not answer.get("stale")
            # A process attaching the retired descriptor afresh must see it
            # as stale (files unlinked), triggering the refresh protocol.
            reset_worker_state()
            assert worker_query(before, [0.1, 0.1], [0.3, 0.3], 2)["stale"]
        finally:
            reset_worker_state()
            engine.close()

    def test_temporary_store_dir_is_cleaned_up(self, data):
        engine = ServeEngine(data, store_backend="colstore")
        directory = engine.shared_descriptor()["buffer"]["directory"]
        import os
        assert os.path.isdir(directory)
        reset_worker_state()
        engine.close()
        assert not os.path.isdir(directory)

    def test_unknown_backend_is_rejected(self, data):
        with pytest.raises(InvalidQueryError, match="backend"):
            ServeEngine(data, store_backend="lsm")


class TestMatrixBackend:
    def test_colstore_backend_is_registered(self):
        assert "colstore" in BACKENDS

    def test_agrees_with_serial_on_churn_scenario(self):
        data, events = SCENARIOS["clus-churn"].build(smoke=True)
        serial = BACKENDS["serial"]().run(data, events)
        colstore = BACKENDS["colstore"]().run(data, events)
        assert colstore.fingerprint() == serial.fingerprint()


class TestCli:
    def test_build_inspect_query_round_trip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cs")
        assert main(["build", "--dataset", "IND", "--cardinality", "400",
                     "--dimensionality", "3", "--seed", "4",
                     "--store-dir", store_dir, "--json"]) == 0
        built = json.loads(capsys.readouterr().out)
        assert built["records"] == 400

        assert main(["inspect", "--store-dir", store_dir, "--json"]) == 0
        inspected = json.loads(capsys.readouterr().out)
        assert inspected["records"] == 400
        assert inspected["tombstones"] == 0
        assert inspected["index"]["height"] >= 1

        assert main(["query", "--store", "colstore", "--store-dir", store_dir,
                     "--k", "2", "--lower", "0.1", "0.1",
                     "--upper", "0.3", "0.3", "--json"]) == 0
        answer = json.loads(capsys.readouterr().out)

        values = synthetic_dataset("IND", 400, 3, seed=4)
        expected = make_engine(values).utk1(region(), 2)
        assert sorted(answer["utk1"]["records"]) == sorted(
            int(i) for i in expected.indices
        )

    def test_query_colstore_requires_store_dir(self, capsys):
        assert main(["query", "--store", "colstore", "--k", "2",
                     "--lower", "0.1", "0.1", "--upper", "0.3", "0.3"]) == 2

    def test_inspect_rejects_non_colstore_directory(self, tmp_path, capsys):
        assert main(["inspect", "--store-dir", str(tmp_path)]) != 0
