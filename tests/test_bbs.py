"""Tests for the generic BBS branch-and-bound traversal."""

import numpy as np
import pytest

from repro.index.rtree import RTree
from repro.skyline.bbs import bbs_candidates
from repro.skyline.dominance import k_skyband_bruteforce


def traditional_dominators(point, members):
    geq = np.all(members >= point - 1e-9, axis=1)
    gt = np.any(members > point + 1e-9, axis=1)
    return geq & gt


class TestTraversal:
    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 4)])
    def test_candidates_superset_of_skyband(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((600, 3))
        tree = RTree(values)
        indices, rows, stats = bbs_candidates(
            tree, k, key=lambda p: float(np.sum(p)), dominators_of=traditional_dominators
        )
        skyband = set(k_skyband_bruteforce(values, k).tolist())
        assert skyband.issubset(set(indices))
        assert stats.candidate_count == len(indices)
        assert len(rows) == len(indices)

    def test_prunes_most_of_the_data(self):
        rng = np.random.default_rng(3)
        values = rng.random((2000, 2))
        tree = RTree(values)
        indices, _, stats = bbs_candidates(
            tree, 2, key=lambda p: float(np.sum(p)), dominators_of=traditional_dominators
        )
        assert len(indices) < 200
        assert stats.records_pruned + stats.nodes_pruned > 0

    def test_empty_tree(self):
        tree = RTree(np.zeros((0, 3)))
        indices, rows, stats = bbs_candidates(
            tree, 1, key=lambda p: float(np.sum(p)), dominators_of=traditional_dominators
        )
        assert indices == [] and rows == []
        assert stats.candidate_count == 0

    def test_pop_order_is_monotone_in_key(self):
        rng = np.random.default_rng(4)
        values = rng.random((300, 2))
        tree = RTree(values)
        indices, _, _ = bbs_candidates(
            tree, 3, key=lambda p: float(np.sum(p)), dominators_of=traditional_dominators
        )
        keys = [float(np.sum(values[i])) for i in indices]
        assert all(a >= b - 1e-9 for a, b in zip(keys, keys[1:]))

    def test_statistics_counts_consistent(self):
        rng = np.random.default_rng(5)
        values = rng.random((500, 3))
        tree = RTree(values)
        _, _, stats = bbs_candidates(
            tree, 2, key=lambda p: float(np.sum(p)), dominators_of=traditional_dominators
        )
        assert stats.records_visited <= 500
        assert stats.heap_pushes >= stats.records_visited
