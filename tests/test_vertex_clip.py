"""Agreement suite for the incremental V-representation of arrangement cells.

The vertex-clip path (:mod:`repro.geometry.vertex_clip`) must agree with the
from-scratch oracle — ``polytope_vertices`` over the full H-representation,
and the LP-backed :class:`Cell` path it replaced — over random half-space
insertion sequences, including near-tangent cuts and degenerate
(lower-dimensional) children.  Comparisons near a tolerance boundary allow
either of the two adjacent outcomes: at that scale the LP and the clip are
both rounding the same knife-edge.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cell import CELL_SIDE_TOL, Cell, vertex_cache_disabled
from repro.core.halfspace import HalfSpace
from repro.core.jaa import JAA
from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.geometry.linear_programming import polytope_vertices
from repro.geometry.vertex_clip import clip
from repro.kernels.vertexops import halfspace_side_bounds, halfspace_side_bounds_loop

common_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Decision margins below this are knife-edge cases where the LP and vertex
#: paths may legitimately round the same boundary differently.
MARGIN = 1e-6

dims = st.integers(1, 3)
seeds = st.integers(0, 10_000)


def random_region(dim: int, rng: np.random.Generator):
    lower = np.round(rng.uniform(0.05, 0.45, size=dim), 3)
    side = np.round(rng.uniform(0.05, 0.3, size=dim), 3)
    upper = np.minimum(lower + side, 0.9 / dim)
    lower = np.minimum(lower, upper - 0.01)
    return hyperrectangle(lower, upper)


def random_halfspace(cell: Cell, rng: np.random.Generator, *, near_tangent: bool) -> HalfSpace:
    """A random cut, biased to cross the cell (or graze it when requested)."""
    dim = cell.dimension
    normal = np.round(rng.normal(size=dim), 3)
    if not np.any(normal):
        normal[0] = 1.0
    low, high = cell.linear_range(normal)
    if near_tangent:
        epsilon = rng.choice([0.0, 1e-12, 1e-9, 1e-6])
        offset = (high if rng.random() < 0.5 else low) - epsilon
    else:
        offset = rng.uniform(low + 0.2 * (high - low), high - 0.2 * (high - low))
    return HalfSpace(normal=normal, offset=float(offset), label=int(rng.integers(1 << 20)))


def build_chain(dim: int, rng: np.random.Generator, length: int) -> list[Cell]:
    """A random restriction chain (the arrangement-tree path the clip walks)."""
    cells = [Cell(random_region(dim, rng))]
    for step in range(length):
        cell = cells[-1]
        halfspace = random_halfspace(cell, rng, near_tangent=(step % 4 == 3))
        child = cell.restricted(halfspace, bool(rng.random() < 0.5))
        if child.vertex_cache() is None or not child.is_full_dimensional():
            continue
        cells.append(child)
    return cells


class TestClipAgainstEnumerationOracle:
    @common_settings
    @given(dims, seeds)
    def test_chain_vertices_match_from_scratch_enumeration(self, dim, seed):
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 6):
            cache = cell.vertex_cache()
            a, b = cell.constraints
            oracle = polytope_vertices(a, b)
            if oracle is None:
                continue
            # Every oracle vertex is present in the cache (the clip may add
            # extra on-face points in degenerate cases, never lose a corner).
            # Near-tangent chain cuts intersect almost-parallel hyperplanes,
            # so the interpolated and the dense-solved coordinates can differ
            # by a conditioning-amplified epsilon — compare at 1e-6.
            for vertex in oracle:
                distance = np.abs(cache.vertices - vertex).sum(axis=1).min()
                assert distance < 1e-6
            # Every cached point is feasible for the full H-representation.
            slack = cache.vertices @ a.T - b[None, :]
            assert slack.max(initial=-np.inf) <= 1e-6

    @common_settings
    @given(dims, seeds)
    def test_linear_bounds_match_oracle(self, dim, seed):
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 6):
            cache = cell.vertex_cache()
            a, b = cell.constraints
            oracle = polytope_vertices(a, b)
            if oracle is None or oracle.shape[0] == 0:
                continue
            for _ in range(3):
                coef = rng.normal(size=dim)
                low, high = cache.linear_bounds(coef)
                values = oracle @ coef
                assert low == pytest.approx(float(values.min()), abs=1e-6)
                assert high == pytest.approx(float(values.max()), abs=1e-6)

    @common_settings
    @given(dims, seeds)
    def test_pruned_rows_are_redundant(self, dim, seed):
        """Dropping the pruned rows must not change the vertex set."""
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 5):
            cache = cell.vertex_cache()
            if cache.is_empty:
                continue
            repruned = polytope_vertices(cache.active_a, cache.active_b)
            if repruned is None:
                continue
            for vertex in cache.vertices:
                assert np.abs(repruned - vertex).sum(axis=1).min() < 1e-6


class TestCellAgainstLPPath:
    @staticmethod
    def lp_twin(cell: Cell) -> Cell:
        """A fresh cell with the same H-representation, forced onto LPs."""
        return Cell(cell.region, cell._extra_a, cell._extra_b)

    @common_settings
    @given(dims, seeds)
    def test_classify_agrees(self, dim, seed):
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 5):
            for near_tangent in (False, True, True):
                halfspace = random_halfspace(cell, rng, near_tangent=near_tangent)
                low, high = cell.linear_range(halfspace.normal)
                vertex_side = cell.classify(halfspace)
                with vertex_cache_disabled():
                    lp_side = self.lp_twin(cell).classify(halfspace)
                if vertex_side == lp_side:
                    continue
                # Disagreements are only allowed on knife-edge margins where
                # the decision flips within MARGIN of the tolerance band.
                margin = min(abs(low - halfspace.offset), abs(high - halfspace.offset))
                assert margin <= MARGIN + CELL_SIDE_TOL, (
                    f"classify mismatch far from the boundary: vertex={vertex_side} "
                    f"lp={lp_side} margin={margin}"
                )

    @common_settings
    @given(dims, seeds)
    def test_interior_point_is_interior(self, dim, seed):
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 5):
            point = cell.interior_point
            assert point is not None
            assert cell.contains(point, tol=1e-9)
            with vertex_cache_disabled():
                lp_point = self.lp_twin(cell).interior_point
            assert lp_point is not None
            assert cell.contains(lp_point, tol=1e-9)

    @common_settings
    @given(dims, seeds)
    def test_linear_range_agrees(self, dim, seed):
        rng = np.random.default_rng(seed)
        for cell in build_chain(dim, rng, 5):
            coef = rng.normal(size=dim)
            low, high = cell.linear_range(coef)
            with vertex_cache_disabled():
                lp_low, lp_high = self.lp_twin(cell).linear_range(coef)
            assert low == pytest.approx(lp_low, abs=1e-6)
            assert high == pytest.approx(lp_high, abs=1e-6)


class TestDegenerateCuts:
    def test_tangent_cut_keeps_parent(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cache = Cell(region).vertex_cache()
        # u1 <= 0.4 exactly touches the face: redundant, child is the parent.
        child = clip(cache, np.array([1.0, 0.0]), 0.4)
        assert child is cache

    def test_cut_beyond_the_cell_is_empty(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cache = Cell(region).vertex_cache()
        child = clip(cache, np.array([-1.0, 0.0]), -0.9)  # u1 >= 0.9
        assert child.is_empty

    def test_tangent_keeping_side_collapses_to_face(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cell = Cell(region)
        halfspace = HalfSpace(np.array([1.0, 0.0]), 0.4)  # u1 >= 0.4: the face
        child = cell.restricted(halfspace, True)
        assert not child.is_full_dimensional()
        cache = child.vertex_cache()
        assert cache is not None and not cache.is_empty
        assert np.allclose(cache.vertices[:, 0], 0.4)
        # Measure-zero cells report no interior point on either path.
        assert child.interior_point is None
        with vertex_cache_disabled():
            assert Cell(child.region, child._extra_a, child._extra_b).interior_point is None

    def test_near_tangent_split_matches_lp(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cell = Cell(region)
        for epsilon in (1e-12, 1e-10, 1e-8, 1e-6, 1e-4):
            halfspace = HalfSpace(np.array([1.0, 0.0]), 0.4 - epsilon)
            vertex_side = cell.classify(halfspace)
            with vertex_cache_disabled():
                lp_side = Cell(region).classify(halfspace)
            # Below the full-dimensionality tolerance both paths must refuse
            # to split; above it both must split.
            assert vertex_side == lp_side

    def test_1d_chain(self):
        region = hyperrectangle([0.2], [0.8])
        cell = Cell(region)
        halfspace = HalfSpace(np.array([1.0]), 0.5)
        assert cell.classify(halfspace) == "split"
        child = cell.restricted(halfspace, True)
        assert sorted(child.vertex_cache().vertices[:, 0].tolist()) == pytest.approx([0.5, 0.8])


class TestPickling:
    def test_cell_ships_its_vertex_cache(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cell = Cell(region).restricted(HalfSpace(np.array([1.0, 0.0]), 0.25), True)
        cache = cell.vertex_cache()
        clone = pickle.loads(pickle.dumps(cell))
        assert clone._vcache is not None
        assert np.array_equal(clone._vcache.vertices, cache.vertices)
        assert np.array_equal(clone._vcache.tight, cache.tight)

    def test_unbuilt_cache_round_trips_as_lazy(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.4])
        cell = Cell(region)
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.vertex_cache() is not None


class TestVertexOpsKernel:
    @common_settings
    @given(seeds)
    def test_kernel_matches_loop_oracle(self, seed):
        rng = np.random.default_rng(seed)
        segments = [rng.random((int(rng.integers(1, 9)), 3)) for _ in range(int(rng.integers(1, 6)))]
        stacked = np.concatenate(segments, axis=0)
        starts = np.concatenate([[0], np.cumsum([s.shape[0] for s in segments[:-1]])])
        normal = rng.normal(size=3)
        mins, maxs = halfspace_side_bounds(stacked, starts, normal)
        loop_mins, loop_maxs = halfspace_side_bounds_loop(stacked, starts, normal)
        # Equal up to the last ulp: BLAS may block the stacked matmul
        # differently than the per-segment products.
        assert np.allclose(mins, loop_mins, rtol=1e-12, atol=1e-14)
        assert np.allclose(maxs, loop_maxs, rtol=1e-12, atol=1e-14)

    def test_empty_input(self):
        mins, maxs = halfspace_side_bounds(np.zeros((0, 2)), np.zeros(0, dtype=int), [1.0, 0.0])
        assert mins.shape == (0,) and maxs.shape == (0,)


class TestEndToEndAgreement:
    """Acceptance property: identical UTK answers with the cache on and off."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000), st.integers(3, 4), st.integers(1, 5))
    def test_rsa_jaa_identical_with_and_without_vertex_cache(self, seed, d, k):
        rng = np.random.default_rng(seed)
        values = np.round(rng.random((40, d)), 3)
        region = random_region(d - 1, rng)
        skyband = compute_r_skyband(values, region, k)
        utk1_on = RSA(values, region, k, skyband=skyband).run()
        utk2_on = JAA(values, region, k, skyband=skyband).run()
        with vertex_cache_disabled():
            utk1_off = RSA(values, region, k, skyband=skyband).run()
            utk2_off = JAA(values, region, k, skyband=skyband).run()
        assert utk1_on.indices == utk1_off.indices
        assert utk2_on.distinct_top_k_sets == utk2_off.distinct_top_k_sets
        # Pointwise cross-check: the partitionings must assign the same
        # top-k set to each other's representative points, not just share
        # the inventory of distinct sets.
        for own, other in ((utk2_on, utk2_off), (utk2_off, utk2_on)):
            for partition in own.partitions:
                point = partition.interior_point
                assert point is not None
                assert other.top_k_at(point) == partition.top_k
        # The LP path never clips; the vertex path never needs scipy (its
        # rare gray-zone Chebyshev LPs stay on the enumeration fast path).
        assert utk1_off.stats["vertex_clip_calls"] == 0
        assert utk1_on.stats["fallback_calls"] == 0

    def test_default_workload_runs_without_scipy_fallback(self):
        rng = np.random.default_rng(11)
        values = rng.random((400, 4))
        region = hyperrectangle([0.1, 0.1, 0.1], [0.15, 0.15, 0.15])
        skyband = compute_r_skyband(values, region, 5)
        utk1 = RSA(values, region, 5, skyband=skyband).run()
        utk2 = JAA(values, region, 5, skyband=skyband).run()
        assert utk1.stats["fallback_calls"] == 0
        assert utk2.stats["fallback_calls"] == 0
        assert utk1.stats["lp_calls"] == 0
        assert utk2.stats["lp_calls"] == 0
