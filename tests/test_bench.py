"""Tests for the benchmark harness: workloads, measurements, reporting."""

import numpy as np
import pytest

from repro.bench.harness import measure_query, run_workload
from repro.bench.reporting import format_series, format_table
from repro.bench.workloads import (
    DEFAULT_PARAMETERS,
    PAPER_PARAMETERS,
    query_workload,
    random_region,
)
from repro.exceptions import InvalidQueryError


class TestWorkloads:
    def test_random_region_is_cube_of_requested_size(self):
        rng = np.random.default_rng(0)
        for d in (2, 3, 4, 5):
            region = random_region(d, 0.05, rng)
            assert region.dimension == d - 1
            widths = [region.linear_max(row) - region.linear_min(row) for row in np.eye(d - 1)]
            assert np.allclose(widths, 0.05, atol=1e-9)

    def test_random_region_inside_simplex(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            region = random_region(4, 0.1, rng)
            assert region.linear_max(np.ones(3)) <= 1.0 + 1e-9
            assert region.linear_min(np.eye(3)[0]) >= -1e-9

    def test_random_region_rejects_bad_sigma(self):
        with pytest.raises(InvalidQueryError):
            random_region(3, 0.0)
        with pytest.raises(InvalidQueryError):
            random_region(3, 1.5)

    def test_workload_reproducible(self):
        first = query_workload(3, 2, 0.05, 4, seed=9)
        second = query_workload(3, 2, 0.05, 4, seed=9)
        assert len(first) == 4
        for a, b in zip(first, second):
            assert np.allclose(a.region.pivot, b.region.pivot)
            assert a.k == b.k

    def test_parameter_tables_have_defaults(self):
        for table in (PAPER_PARAMETERS, DEFAULT_PARAMETERS):
            assert table["k_default"] in table["k"]
            assert table["sigma_default"] in table["sigma"]


class TestHarness:
    @pytest.fixture
    def setting(self, rng):
        values = rng.random((150, 3))
        workload = query_workload(3, 2, 0.05, 2, seed=3)
        return values, workload

    @pytest.mark.parametrize("algorithm", ["RSA", "JAA", "SK1", "ON1"])
    def test_measure_query_runs(self, setting, algorithm):
        values, workload = setting
        measurement = measure_query(algorithm, values, workload[0].region, 2)
        assert measurement.elapsed_seconds > 0.0
        assert measurement.output_size >= 1
        assert measurement.algorithm == algorithm

    def test_memory_tracking(self, setting):
        values, workload = setting
        measurement = measure_query("RSA", values, workload[0].region, 2, track_memory=True)
        assert measurement.peak_memory_bytes > 0

    def test_rsa_and_jaa_consistent_outputs(self, setting):
        values, workload = setting
        rsa = measure_query("RSA", values, workload[0].region, 2)
        jaa = measure_query("JAA", values, workload[0].region, 2)
        assert set(jaa.details["records"]) == set(rsa.details["indices"])

    def test_run_workload_aggregates(self, setting):
        values, workload = setting
        aggregate = run_workload("RSA", values, workload)
        assert aggregate.queries == 2
        assert aggregate.mean_seconds > 0.0
        assert len(aggregate.per_query) == 2

    def test_unknown_algorithm_rejected(self, setting):
        values, workload = setting
        with pytest.raises(InvalidQueryError):
            measure_query("XYZ", values, workload[0].region, 2)

    def test_empty_workload_rejected(self, setting):
        values, _ = setting
        with pytest.raises(InvalidQueryError):
            run_workload("RSA", values, [])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_small_floats_use_scientific(self):
        text = format_table(["x"], [[0.00001234]])
        assert "e-05" in text

    def test_format_series(self):
        series = {"RSA": {1: 0.5, 2: 0.7}, "SK": {1: 5.0}}
        text = format_series(series, "k")
        assert "RSA" in text and "SK" in text
        assert text.splitlines()[-1].startswith("2")
