"""Tests for the benchmark harness: workloads, measurements, reporting."""

import numpy as np
import pytest

from repro.bench.harness import measure_query, run_workload
from repro.bench.reporting import format_series, format_table
from repro.bench.workloads import (
    DEFAULT_PARAMETERS,
    PAPER_PARAMETERS,
    query_workload,
    random_region,
)
from repro.exceptions import InvalidQueryError


class TestWorkloads:
    def test_random_region_is_cube_of_requested_size(self):
        rng = np.random.default_rng(0)
        for d in (2, 3, 4, 5):
            region = random_region(d, 0.05, rng)
            assert region.dimension == d - 1
            widths = [region.linear_max(row) - region.linear_min(row) for row in np.eye(d - 1)]
            assert np.allclose(widths, 0.05, atol=1e-9)

    def test_random_region_inside_simplex(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            region = random_region(4, 0.1, rng)
            assert region.linear_max(np.ones(3)) <= 1.0 + 1e-9
            assert region.linear_min(np.eye(3)[0]) >= -1e-9

    def test_random_region_rejects_bad_sigma(self):
        with pytest.raises(InvalidQueryError):
            random_region(3, 0.0)
        with pytest.raises(InvalidQueryError):
            random_region(3, 1.5)

    def test_workload_reproducible(self):
        first = query_workload(3, 2, 0.05, 4, seed=9)
        second = query_workload(3, 2, 0.05, 4, seed=9)
        assert len(first) == 4
        for a, b in zip(first, second):
            assert np.allclose(a.region.pivot, b.region.pivot)
            assert a.k == b.k

    def test_parameter_tables_have_defaults(self):
        for table in (PAPER_PARAMETERS, DEFAULT_PARAMETERS):
            assert table["k_default"] in table["k"]
            assert table["sigma_default"] in table["sigma"]


class TestHarness:
    @pytest.fixture
    def setting(self, rng):
        values = rng.random((150, 3))
        workload = query_workload(3, 2, 0.05, 2, seed=3)
        return values, workload

    @pytest.mark.parametrize("algorithm", ["RSA", "JAA", "SK1", "ON1"])
    def test_measure_query_runs(self, setting, algorithm):
        values, workload = setting
        measurement = measure_query(algorithm, values, workload[0].region, 2)
        assert measurement.elapsed_seconds > 0.0
        assert measurement.output_size >= 1
        assert measurement.algorithm == algorithm

    def test_memory_tracking(self, setting):
        values, workload = setting
        measurement = measure_query("RSA", values, workload[0].region, 2, track_memory=True)
        assert measurement.peak_memory_bytes > 0

    def test_rsa_and_jaa_consistent_outputs(self, setting):
        values, workload = setting
        rsa = measure_query("RSA", values, workload[0].region, 2)
        jaa = measure_query("JAA", values, workload[0].region, 2)
        assert set(jaa.details["records"]) == set(rsa.details["indices"])

    def test_run_workload_aggregates(self, setting):
        values, workload = setting
        aggregate = run_workload("RSA", values, workload)
        assert aggregate.queries == 2
        assert aggregate.mean_seconds > 0.0
        assert len(aggregate.per_query) == 2

    def test_unknown_algorithm_rejected(self, setting):
        values, workload = setting
        with pytest.raises(InvalidQueryError):
            measure_query("XYZ", values, workload[0].region, 2)

    def test_empty_workload_rejected(self, setting):
        values, _ = setting
        with pytest.raises(InvalidQueryError):
            run_workload("RSA", values, [])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_small_floats_use_scientific(self):
        text = format_table(["x"], [[0.00001234]])
        assert "e-05" in text

    def test_format_series(self):
        series = {"RSA": {1: 0.5, 2: 0.7}, "SK": {1: 5.0}}
        text = format_series(series, "k")
        assert "RSA" in text and "SK" in text
        assert text.splitlines()[-1].startswith("2")


class TestArtifactSchema:
    """The BENCH/METRICS artifact shapes are pinned by repro.bench.schema."""

    def _payload(self, tmp_path):
        from repro.bench.reporting import write_bench_json

        return write_bench_json(
            tmp_path / "BENCH_demo.json",
            "demo",
            [{"scenario": "s", "backend": "b", "qps": 10.0, "gated": True}],
            gates={"passed": True},
            meta={"smoke": True},
        )

    def test_write_bench_json_stamps_schema_version(self, tmp_path):
        from repro.bench.schema import SCHEMA_VERSION

        payload = self._payload(tmp_path)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_bench_file_round_trips_validation(self, tmp_path):
        from repro.bench.schema import validate_bench_file

        self._payload(tmp_path)
        payload = validate_bench_file(tmp_path / "BENCH_demo.json")
        assert payload["benchmark"] == "demo"

    def test_missing_required_key_fails(self, tmp_path):
        from repro.bench.schema import SchemaError, validate_bench_payload

        payload = self._payload(tmp_path)
        del payload["rows"]
        with pytest.raises(SchemaError, match="rows"):
            validate_bench_payload(payload)

    def test_wrong_type_fails(self, tmp_path):
        from repro.bench.schema import SchemaError, validate_bench_payload

        payload = self._payload(tmp_path)
        payload["rows"] = "not-a-list"
        with pytest.raises(SchemaError, match="expected array"):
            validate_bench_payload(payload)

    def test_newer_schema_version_rejected(self, tmp_path):
        from repro.bench.schema import SCHEMA_VERSION, SchemaError, validate_bench_payload

        payload = self._payload(tmp_path)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="newer"):
            validate_bench_payload(payload)

    def test_metrics_jsonl_round_trips_validation(self, tmp_path):
        from repro import obs
        from repro.bench.reporting import write_bench_metrics
        from repro.bench.schema import validate_metrics_file
        from repro.obs import names
        from repro.obs.metrics import REGISTRY

        REGISTRY.reset()
        with obs.activated():
            names.QUERIES.inc(version="utk1", source="cold")
        path = tmp_path / "METRICS_demo.jsonl"
        write_bench_metrics(path, "demo", meta={"smoke": True})
        assert validate_metrics_file(path) > 0

    def test_metrics_header_drift_fails(self, tmp_path):
        import json as _json

        from repro.bench.schema import SchemaError, validate_metrics_lines

        with pytest.raises(SchemaError, match="schema_version"):
            validate_metrics_lines([_json.loads('{"record": "header"}')])

    def test_corrupt_jsonl_line_reports_line_number(self, tmp_path):
        from repro.bench.schema import SchemaError, validate_metrics_file

        path = tmp_path / "METRICS_bad.jsonl"
        path.write_text('{"record": "header", "schema_version": 1, '
                        '"benchmark": "x", "created_at": "t"}\nnot json\n')
        with pytest.raises(SchemaError, match=":2"):
            validate_metrics_file(path)


class TestTrend:
    """repro.bench.trend: >20% gated regressions fail, everything else warns."""

    def _matrix_payload(self, tmp_path, name, qps_by_cell, *, smoke=True, gated=True):
        from repro.bench.reporting import write_bench_json

        rows = [
            {
                "scenario": scenario,
                "backend": backend,
                "qps": qps,
                "gated": gated,
                "oracle": "ok",
            }
            for (scenario, backend), qps in qps_by_cell.items()
        ]
        path = tmp_path / name
        write_bench_json(path, "matrix", rows, meta={"smoke": smoke})
        return path

    def test_identical_payloads_pass(self, tmp_path):
        from repro.bench.trend import compare_files

        cells = {("s1", "serial"): 100.0, ("s1", "engine"): 400.0}
        current = self._matrix_payload(tmp_path, "BENCH_current.json", cells)
        baseline = self._matrix_payload(tmp_path, "BENCH_baseline.json", cells)
        report = compare_files(current, baseline)
        assert report.ok
        assert all(entry["status"] == "ok" for entry in report.entries)

    def test_injected_regression_over_threshold_fails(self, tmp_path):
        """Acceptance criterion: a synthetic >20% regression fails the trend."""
        from repro.bench.trend import compare_files

        baseline = self._matrix_payload(
            tmp_path, "BENCH_baseline.json", {("s1", "serial"): 100.0}
        )
        current = self._matrix_payload(
            tmp_path, "BENCH_current.json", {("s1", "serial"): 70.0}
        )
        report = compare_files(current, baseline)
        assert not report.ok
        assert report.regressions[0]["cell"] == "s1/serial"
        assert "regression" in report.markdown()

    def test_regression_within_threshold_passes(self, tmp_path):
        from repro.bench.trend import compare_files

        baseline = self._matrix_payload(
            tmp_path, "BENCH_baseline.json", {("s1", "serial"): 100.0}
        )
        current = self._matrix_payload(
            tmp_path, "BENCH_current.json", {("s1", "serial"): 85.0}
        )
        assert compare_files(current, baseline).ok

    def test_ungated_regression_does_not_fail(self, tmp_path):
        from repro.bench.trend import compare_files

        baseline = self._matrix_payload(
            tmp_path, "BENCH_baseline.json", {("s1", "serial"): 100.0}, gated=False
        )
        current = self._matrix_payload(
            tmp_path, "BENCH_current.json", {("s1", "serial"): 10.0}, gated=False
        )
        report = compare_files(current, baseline)
        assert report.ok
        assert report.entries[0]["status"] == "regressed-ungated"

    def test_new_and_missing_cells_warn_not_fail(self, tmp_path):
        from repro.bench.trend import compare_files

        baseline = self._matrix_payload(
            tmp_path, "BENCH_baseline.json", {("s1", "serial"): 100.0}
        )
        current = self._matrix_payload(
            tmp_path, "BENCH_current.json", {("s2", "serial"): 50.0}
        )
        report = compare_files(current, baseline)
        assert report.ok
        statuses = {entry["cell"]: entry["status"] for entry in report.entries}
        assert statuses == {"s1/serial": "missing", "s2/serial": "new"}

    def test_smoke_vs_full_baselines_are_incomparable(self, tmp_path):
        from repro.bench.schema import SchemaError
        from repro.bench.trend import compare_files

        baseline = self._matrix_payload(
            tmp_path, "BENCH_baseline.json", {("s1", "serial"): 100.0}, smoke=False
        )
        current = self._matrix_payload(
            tmp_path, "BENCH_current.json", {("s1", "serial"): 100.0}, smoke=True
        )
        with pytest.raises(SchemaError, match="smoke"):
            compare_files(current, baseline)

    def test_committed_baselines_validate_and_self_compare(self):
        from pathlib import Path

        from repro.bench.trend import compare_files

        for name in ("BENCH_matrix_smoke.json", "BENCH_matrix.json"):
            path = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / name
            assert path.exists(), f"committed baseline {name} is missing"
            assert compare_files(path, path).ok
