"""Streaming STR bulk load: same tree whether sorts fit in memory or not.

The loader mirrors the in-memory R-tree's STR partitioning; because both
its in-memory and external sort paths are stable, a build forced through
the external sample-splitter passes must produce a **byte-identical** page
file to the comfortable in-memory build.  Answers must match the in-memory
R-tree regardless of path, tombstones must be excluded, and the degenerate
empty store must produce a valid (empty) paged tree.
"""

import numpy as np
import pytest

from repro.colstore import ColumnarRecordStore, build_paged_rtree
from repro.colstore.pages import PagedRTree
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.dynamic.store import RecordStore
from repro.index.rtree import RTree


def region():
    return hyperrectangle([0.1, 0.1], [0.35, 0.3])


@pytest.fixture
def values():
    return np.random.default_rng(7).random((500, 3))


class TestStreamingBuild:
    def test_external_and_in_memory_paths_agree_bytewise(self, tmp_path, values):
        store = RecordStore(values)
        comfortable = tmp_path / "mem.pages"
        forced = tmp_path / "ext.pages"
        build_paged_rtree(store, comfortable, max_entries=16, budget_rows=1 << 20)
        # budget far below the dataset forces the sample-splitter passes.
        build_paged_rtree(store, forced, max_entries=16, budget_rows=64)
        assert comfortable.read_bytes() == forced.read_bytes()

    def test_answers_match_in_memory_rtree(self, tmp_path, values):
        build_paged_rtree(values, tmp_path / "t.pages", max_entries=16,
                          budget_rows=128)
        paged = PagedRTree(tmp_path / "t.pages", values)
        reference = RTree(values)
        for k in (1, 2, 3):
            expected = compute_r_skyband(values, region(), k, tree=reference)
            actual = compute_r_skyband(values, region(), k, tree=paged)
            assert set(actual.members()) == set(expected.members())

    def test_tombstoned_records_are_excluded(self, tmp_path, values):
        store = RecordStore(values)
        deleted = [0, 17, 499]
        for record_id in deleted:
            store.delete(record_id)
        meta = build_paged_rtree(store, tmp_path / "t.pages", max_entries=16,
                                 budget_rows=64)
        assert meta["size"] == 497
        paged = PagedRTree(tmp_path / "t.pages", store.matrix)
        skyband = compute_r_skyband(store.matrix, region(), 3, tree=paged)
        assert not set(skyband.members()) & set(deleted)
        expected = compute_r_skyband(store.matrix[store.active_ids()], region(), 3)
        np.testing.assert_array_equal(
            np.sort(store.active_ids()[expected.indices]),
            np.sort(skyband.members()),
        )

    def test_colstore_source_streams_through(self, tmp_path, values):
        store = ColumnarRecordStore(values, directory=tmp_path / "store")
        meta = build_paged_rtree(store, tmp_path / "t.pages", max_entries=16,
                                 budget_rows=64)
        assert meta["size"] == 500
        paged = PagedRTree(tmp_path / "t.pages", store.matrix)
        expected = compute_r_skyband(values, region(), 2, tree=RTree(values))
        actual = compute_r_skyband(store.matrix, region(), 2, tree=paged)
        assert set(actual.members()) == set(expected.members())

    def test_empty_dataset_builds_an_empty_tree(self, tmp_path):
        empty = np.empty((0, 3))
        meta = build_paged_rtree(empty, tmp_path / "t.pages")
        assert meta["size"] == 0
        paged = PagedRTree(tmp_path / "t.pages", empty)
        assert len(paged) == 0
        assert paged.root.is_leaf
        assert paged.root.mbb is None
        skyband = compute_r_skyband(empty, region(), 2, tree=paged)
        assert len(skyband.members()) == 0

    def test_scratch_files_are_cleaned_up(self, tmp_path, values):
        build_paged_rtree(values, tmp_path / "t.pages", max_entries=16,
                          budget_rows=64, scratch_dir=tmp_path)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if not p.name.startswith("t.pages")]
        assert leftovers == []

    def test_meta_geometry_is_consistent(self, tmp_path, values):
        meta = build_paged_rtree(values, tmp_path / "t.pages", max_entries=8)
        paged = PagedRTree(tmp_path / "t.pages", values)
        # STR re-ceils per slab, so the leaf count may exceed the global
        # minimum by a few — but never enough to drop fill below ~0.9.
        assert meta["n_leaves"] >= int(np.ceil(500 / 8))
        assert paged.height() == meta["height"]
        assert 0.9 < paged.fill_factor() <= 1.0  # STR packs leaves full
