"""End-to-end integration tests across modules and algorithms.

These tests run complete UTK queries on every dataset family and check the
mutual consistency of RSA, JAA and the SK/ON baselines, the exactness
certificates (witnesses), and the generalized-scoring path.
"""

import numpy as np
import pytest

from repro import Dataset, PowerScoring, hyperrectangle, utk1, utk2, utk_query
from repro.bench.workloads import random_region
from repro.core.jaa import JAA
from repro.core.rsa import RSA
from repro.datasets.real import hotel_dataset, house_dataset, nba_league_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.index.rtree import RTree
from repro.queries.baselines import baseline_utk1

from helpers import brute_force_top_k, sampled_top_k_union


class TestCrossAlgorithmConsistency:
    @pytest.mark.parametrize("distribution", ["IND", "COR", "ANTI"])
    def test_rsa_jaa_baseline_agree_on_synthetic(self, distribution):
        data = synthetic_dataset(distribution, 250, 3, seed=13)
        region = hyperrectangle([0.2, 0.15], [0.4, 0.3])
        k = 3
        rsa = RSA(data.values, region, k).run()
        jaa = JAA(data.values, region, k).run()
        baseline = baseline_utk1(data.values, region, k)
        assert set(jaa.result_records) == set(rsa.indices)
        assert baseline.result_indices == rsa.indices

    @pytest.mark.parametrize("maker", [hotel_dataset, house_dataset, nba_league_dataset])
    def test_real_substitutes_consistency(self, maker):
        data = maker(400, seed=5)
        rng = np.random.default_rng(11)
        region = random_region(data.dimensionality, 0.05, rng)
        k = 3
        rsa = RSA(data.values, region, k).run()
        jaa = JAA(data.values, region, k).run()
        assert set(jaa.result_records) == set(rsa.indices)
        sampled = sampled_top_k_union(data.values, region, k, samples=500, seed=3)
        assert sampled.issubset(set(rsa.indices))

    def test_rtree_backed_query_matches_flat(self):
        data = synthetic_dataset("IND", 1200, 3, seed=17)
        region = hyperrectangle([0.25, 0.2], [0.4, 0.35])
        tree = RTree(data.values)
        with_tree = utk1(data, region, 4, tree=tree)
        without_tree = utk1(data, region, 4)
        assert with_tree.indices == without_tree.indices


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_queries_full_consistency(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 5))
        n = int(rng.integers(50, 220))
        k = int(rng.integers(1, 6))
        values = rng.random((n, d)) * 10
        region = random_region(d, float(rng.uniform(0.02, 0.15)), rng)
        utk1_result = RSA(values, region, k).run()
        utk2_result = JAA(values, region, k).run()
        # UTK2 union equals UTK1.
        assert set(utk2_result.result_records) == set(utk1_result.indices)
        # UTK2 cells agree with brute force at random probes.
        for weights in region.sample(120, rng):
            assert utk2_result.top_k_at(weights) == \
                frozenset(brute_force_top_k(values, weights, k))
        # Witnesses certify every UTK1 member.
        for index in utk1_result.indices:
            witness = utk1_result.witness_of(index)
            assert index in brute_force_top_k(values, witness, k)


class TestScoringIntegration:
    def test_power_scoring_changes_geometry_but_stays_consistent(self):
        data = Dataset(np.random.default_rng(23).random((200, 3)) * 10)
        region = hyperrectangle([0.15, 0.1], [0.35, 0.3])
        first, second = utk_query(data, region, 3, scoring=PowerScoring(2.0))
        assert set(second.result_records) == set(first.indices)
        transformed = data.values ** 2
        for index in first.indices:
            witness = first.witness_of(index)
            assert index in brute_force_top_k(transformed, witness, 3)


class TestScalabilitySmoke:
    def test_moderate_dataset_runs_quickly(self):
        data = synthetic_dataset("IND", 5000, 4, seed=29)
        rng = np.random.default_rng(29)
        region = random_region(4, 0.03, rng)
        result = utk1(data, region, 5)
        assert len(result) >= 5
        partitioning = utk2(data, region, 5)
        assert set(partitioning.result_records) == set(result.indices)
