"""Unit and property tests for the R-tree.

The hypothesis suites check the structural invariants across random insert /
delete workloads: every node's MBB is *tight* (exactly the bounds of the
points beneath it, not merely covering), every non-root node respects the
``min_entries``/``max_entries`` fill bounds, ``range_search`` agrees with
brute force, and ``__len__``/``all_indices`` stay consistent.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidDatasetError
from repro.index.rtree import RTree

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def brute_force_range(points, lower, upper):
    lower = np.asarray(lower)
    upper = np.asarray(upper)
    mask = np.all((points >= lower) & (points <= upper), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


def assert_invariants(tree: RTree, expected: dict[int, np.ndarray]):
    """Structural invariants against the expected ``{index: point}`` content."""
    assert len(tree) == len(expected)
    assert tree.all_indices() == sorted(expected)
    if not expected:
        assert tree.root.mbb is None
        return
    stack = [(tree.root, True)]
    seen: list[int] = []
    while stack:
        node, is_root = stack.pop()
        count = len(node.entries) if node.is_leaf else len(node.children)
        assert count <= tree.max_entries
        if not is_root:
            assert count >= tree.min_entries, "non-root node below the minimum fill"
        if node.is_leaf:
            points = np.array([point for _, point in node.entries])
            seen.extend(index for index, _ in node.entries)
            for index, point in node.entries:
                assert np.array_equal(point, expected[index])
        else:
            assert all(child.parent is node for child in node.children)
            points = np.array(
                [bound for child in node.children for bound in (child.mbb.lower, child.mbb.upper)]
            )
            stack.extend((child, False) for child in node.children)
        # Tight MBB: exactly the bounds of the contents, not merely covering.
        assert np.allclose(node.mbb.lower, points.min(axis=0), atol=1e-12)
        assert np.allclose(node.mbb.upper, points.max(axis=0), atol=1e-12)
    assert sorted(seen) == sorted(expected)


class TestBulkLoad:
    def test_all_indices_present(self):
        rng = np.random.default_rng(0)
        points = rng.random((500, 3))
        tree = RTree(points)
        assert tree.all_indices() == list(range(500))
        assert len(tree) == 500

    def test_empty_bulk_load(self):
        tree = RTree(np.zeros((0, 2)))
        assert tree.all_indices() == []
        assert tree.root.mbb is None

    def test_node_capacity_respected(self):
        rng = np.random.default_rng(1)
        tree = RTree(rng.random((300, 2)), max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.entries) <= 8
            else:
                assert len(node.children) <= 8
                stack.extend(node.children)

    def test_mbbs_cover_children(self):
        rng = np.random.default_rng(2)
        points = rng.random((400, 3))
        tree = RTree(points)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for index, point in node.entries:
                    assert node.mbb.contains_point(point, tol=1e-12)
            else:
                for child in node.children:
                    assert np.all(node.mbb.lower <= child.mbb.lower + 1e-12)
                    assert np.all(node.mbb.upper >= child.mbb.upper - 1e-12)
                    stack.append(child)

    def test_height_grows_logarithmically(self):
        rng = np.random.default_rng(3)
        tree = RTree(rng.random((1000, 2)), max_entries=16)
        assert 2 <= tree.height() <= 4

    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidDatasetError):
            RTree(np.zeros(10))

    def test_rejects_small_capacity(self):
        with pytest.raises(InvalidDatasetError):
            RTree(max_entries=2)


class TestInsertion:
    def test_incremental_insert_contains_all(self):
        rng = np.random.default_rng(4)
        points = rng.random((200, 2))
        tree = RTree(max_entries=8)
        for index, point in enumerate(points):
            tree.insert(index, point)
        assert tree.all_indices() == list(range(200))

    def test_insert_after_bulk_load(self):
        rng = np.random.default_rng(5)
        points = rng.random((100, 3))
        tree = RTree(points)
        tree.insert(100, rng.random(3))
        assert 100 in tree.all_indices()
        assert len(tree) == 101

    def test_insert_dimension_mismatch(self):
        tree = RTree(np.random.default_rng(0).random((10, 2)))
        with pytest.raises(InvalidDatasetError):
            tree.insert(10, [0.1, 0.2, 0.3])

    def test_insert_keeps_mbbs_consistent(self):
        rng = np.random.default_rng(6)
        tree = RTree(max_entries=6)
        points = rng.random((150, 2))
        for index, point in enumerate(points):
            tree.insert(index, point)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for index, point in node.entries:
                    assert node.mbb.contains_point(point, tol=1e-12)
            else:
                for child in node.children:
                    assert np.all(node.mbb.lower <= child.mbb.lower + 1e-12)
                    assert np.all(node.mbb.upper >= child.mbb.upper - 1e-12)
                    stack.append(child)


class TestDelete:
    def test_delete_and_reinsert_roundtrip(self):
        rng = np.random.default_rng(10)
        points = rng.random((120, 3))
        tree = RTree(points, max_entries=6)
        for index in range(0, 120, 2):
            tree.delete(index, points[index])
        assert_invariants(tree, {i: points[i] for i in range(1, 120, 2)})
        for index in range(0, 120, 2):
            tree.insert(index, points[index])
        assert_invariants(tree, {i: points[i] for i in range(120)})

    def test_delete_without_point_hint(self):
        rng = np.random.default_rng(11)
        points = rng.random((50, 2))
        tree = RTree(points, max_entries=5)
        tree.delete(17)
        assert 17 not in tree.all_indices()
        assert len(tree) == 49

    def test_delete_missing_raises(self):
        tree = RTree(np.random.default_rng(0).random((20, 2)))
        with pytest.raises(KeyError):
            tree.delete(99)
        tree.delete(5)
        with pytest.raises(KeyError):  # already gone
            tree.delete(5)

    def test_wrong_point_hint_still_deletes(self):
        rng = np.random.default_rng(12)
        points = rng.random((40, 2))
        tree = RTree(points, max_entries=5)
        tree.delete(3, np.array([99.0, 99.0]))  # hint misses; falls back to a scan
        assert 3 not in tree.all_indices()

    def test_delete_everything_leaves_an_empty_tree(self):
        rng = np.random.default_rng(13)
        points = rng.random((64, 2))
        tree = RTree(points, max_entries=5)
        for index in rng.permutation(64):
            tree.delete(int(index), points[index])
        assert len(tree) == 0
        assert tree.all_indices() == []
        assert tree.root.is_leaf and tree.root.mbb is None
        tree.insert(7, points[0])  # the empty tree accepts new records again
        assert tree.all_indices() == [7]

    def test_range_search_after_deletes(self):
        rng = np.random.default_rng(14)
        points = rng.random((200, 3))
        tree = RTree(points, max_entries=8)
        removed = set(range(0, 200, 3))
        for index in removed:
            tree.delete(index, points[index])
        keep = np.array(sorted(set(range(200)) - removed))
        for _ in range(10):
            lower = rng.random(3) * 0.5
            upper = lower + rng.random(3) * 0.5
            mask = np.all((points[keep] >= lower) & (points[keep] <= upper), axis=1)
            assert tree.range_search(lower, upper) == sorted(keep[mask].tolist())


class TestInvariantProperties:
    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 120),
        max_entries=st.sampled_from([4, 5, 8, 16]),
        dim=st.integers(2, 4),
    )
    def test_incremental_insert_invariants(self, seed, count, max_entries, dim):
        rng = np.random.default_rng(seed)
        points = rng.random((count, dim))
        tree = RTree(max_entries=max_entries)
        for index, point in enumerate(points):
            tree.insert(index, point)
        assert_invariants(tree, {i: points[i] for i in range(count)})

    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(1, 200),
        max_entries=st.sampled_from([4, 5, 8, 16]),
    )
    def test_bulk_load_invariants(self, seed, count, max_entries):
        rng = np.random.default_rng(seed)
        points = rng.random((count, 3))
        tree = RTree(points, max_entries=max_entries)
        assert_invariants(tree, {i: points[i] for i in range(count)})

    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(4, 120),
        max_entries=st.sampled_from([4, 8, 16]),
        hint=st.booleans(),
    )
    def test_interleaved_insert_delete_invariants(self, seed, count, max_entries, hint):
        rng = np.random.default_rng(seed)
        points = rng.random((count, 3))
        split = count // 2
        tree = RTree(points[:split], max_entries=max_entries) if split else RTree(
            max_entries=max_entries
        )
        alive = {i: points[i] for i in range(split)}
        next_index = split
        for _ in range(count):
            if alive and rng.random() < 0.45:
                victim = int(rng.choice(list(alive)))
                point = alive.pop(victim)
                tree.delete(victim, point if hint else None)
            elif next_index < count:
                tree.insert(next_index, points[next_index])
                alive[next_index] = points[next_index]
                next_index += 1
        assert_invariants(tree, alive)
        lower = rng.random(3) * 0.5
        upper = lower + rng.random(3) * 0.5
        expected = sorted(
            index
            for index, point in alive.items()
            if np.all(point >= lower) and np.all(point <= upper)
        )
        assert tree.range_search(lower, upper) == expected


class TestRangeSearch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((400, 3))
        tree = RTree(points)
        for _ in range(10):
            lower = rng.random(3) * 0.5
            upper = lower + rng.random(3) * 0.5
            assert tree.range_search(lower, upper) == brute_force_range(points, lower, upper)

    def test_empty_tree_range(self):
        tree = RTree(np.zeros((0, 2)))
        assert tree.range_search([0, 0], [1, 1]) == []

    def test_full_domain_range_returns_everything(self):
        rng = np.random.default_rng(9)
        points = rng.random((120, 2))
        tree = RTree(points)
        assert tree.range_search([0, 0], [1, 1]) == list(range(120))
