"""Unit tests for the R-tree."""

import numpy as np
import pytest

from repro.exceptions import InvalidDatasetError
from repro.index.rtree import RTree


def brute_force_range(points, lower, upper):
    lower = np.asarray(lower)
    upper = np.asarray(upper)
    mask = np.all((points >= lower) & (points <= upper), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


class TestBulkLoad:
    def test_all_indices_present(self):
        rng = np.random.default_rng(0)
        points = rng.random((500, 3))
        tree = RTree(points)
        assert tree.all_indices() == list(range(500))
        assert len(tree) == 500

    def test_empty_bulk_load(self):
        tree = RTree(np.zeros((0, 2)))
        assert tree.all_indices() == []
        assert tree.root.mbb is None

    def test_node_capacity_respected(self):
        rng = np.random.default_rng(1)
        tree = RTree(rng.random((300, 2)), max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.entries) <= 8
            else:
                assert len(node.children) <= 8
                stack.extend(node.children)

    def test_mbbs_cover_children(self):
        rng = np.random.default_rng(2)
        points = rng.random((400, 3))
        tree = RTree(points)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for index, point in node.entries:
                    assert node.mbb.contains_point(point, tol=1e-12)
            else:
                for child in node.children:
                    assert np.all(node.mbb.lower <= child.mbb.lower + 1e-12)
                    assert np.all(node.mbb.upper >= child.mbb.upper - 1e-12)
                    stack.append(child)

    def test_height_grows_logarithmically(self):
        rng = np.random.default_rng(3)
        tree = RTree(rng.random((1000, 2)), max_entries=16)
        assert 2 <= tree.height() <= 4

    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidDatasetError):
            RTree(np.zeros(10))

    def test_rejects_small_capacity(self):
        with pytest.raises(InvalidDatasetError):
            RTree(max_entries=2)


class TestInsertion:
    def test_incremental_insert_contains_all(self):
        rng = np.random.default_rng(4)
        points = rng.random((200, 2))
        tree = RTree(max_entries=8)
        for index, point in enumerate(points):
            tree.insert(index, point)
        assert tree.all_indices() == list(range(200))

    def test_insert_after_bulk_load(self):
        rng = np.random.default_rng(5)
        points = rng.random((100, 3))
        tree = RTree(points)
        tree.insert(100, rng.random(3))
        assert 100 in tree.all_indices()
        assert len(tree) == 101

    def test_insert_dimension_mismatch(self):
        tree = RTree(np.random.default_rng(0).random((10, 2)))
        with pytest.raises(InvalidDatasetError):
            tree.insert(10, [0.1, 0.2, 0.3])

    def test_insert_keeps_mbbs_consistent(self):
        rng = np.random.default_rng(6)
        tree = RTree(max_entries=6)
        points = rng.random((150, 2))
        for index, point in enumerate(points):
            tree.insert(index, point)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for index, point in node.entries:
                    assert node.mbb.contains_point(point, tol=1e-12)
            else:
                for child in node.children:
                    assert np.all(node.mbb.lower <= child.mbb.lower + 1e-12)
                    assert np.all(node.mbb.upper >= child.mbb.upper - 1e-12)
                    stack.append(child)


class TestRangeSearch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((400, 3))
        tree = RTree(points)
        for _ in range(10):
            lower = rng.random(3) * 0.5
            upper = lower + rng.random(3) * 0.5
            assert tree.range_search(lower, upper) == brute_force_range(points, lower, upper)

    def test_empty_tree_range(self):
        tree = RTree(np.zeros((0, 2)))
        assert tree.range_search([0, 0], [1, 1]) == []

    def test_full_domain_range_returns_everything(self):
        rng = np.random.default_rng(9)
        points = rng.random((120, 2))
        tree = RTree(points)
        assert tree.range_search([0, 0], [1, 1]) == list(range(120))
